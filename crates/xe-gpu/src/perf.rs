//! The calibrated GEMM/stream execution-time model.
//!
//! Every kernel is priced as
//!
//! ```text
//! t = max(t_compute, t_memory) + launch_latency
//! ```
//!
//! a roofline with explicit derating factors:
//!
//! * **Sustained fraction** — power/frequency throttling keeps the engines
//!   below their Table I peaks under sustained load (the paper: "power
//!   limitations are tied to hardware design"). Vector engines sustain
//!   ~80% (FP32) / ~65% (FP64); the XMX arrays sustain ~45% (BF16) /
//!   ~50% (TF32) of peak once the full stack is lit up.
//! * **Shape efficiency** — saturating `d/(d + d½)` terms per GEMM
//!   dimension; the systolic arrays need larger tiles than the vector
//!   engines, so a small `m` (DCMESH's m = 128) starves them. This is the
//!   paper's "bandwidth limitations stem primarily from the relatively
//!   small m = 128 dimension".
//! * **Conversion traffic** — the `FLOAT_TO_*` modes read the FP32 inputs,
//!   write BF16/TF32 component matrices, and re-read one component pair
//!   per component product; `COMPLEX_3M` writes and re-reads its combined
//!   planes. This is what turns the huge-`k`, small-`m` DCMESH GEMMs
//!   memory-bound in the fast modes and caps BF16 at ~3.9× instead of 16×.
//!
//! **Calibration.** All constants are fixed here; a single anchor — the
//! paper's 135-atom FP32 time for 500 QD steps (1472 s) — was used to set
//! the mesh-kernel efficiency in [`crate::kernels`]. Every ratio reported
//! in EXPERIMENTS.md (mode orderings, per-call speedups, FP64/FP32 gaps)
//! is then emergent, not fitted.

use crate::device::{DeviceSpec, Engine};
use crate::kernels::StreamKernel;
use mkl_lite::device::{DeviceTimeModel, Domain, GemmDesc};
use mkl_lite::ComputeMode;

/// Fraction of peak HBM bandwidth a tuned GEMM sustains.
const GEMM_BW_EFF: f64 = 0.72;

/// Sustained fraction of peak FLOP/s per engine/precision.
fn sustained_fraction(engine: Engine, mode: ComputeMode, fp64: bool) -> f64 {
    match engine {
        Engine::Vector => {
            if fp64 {
                0.65
            } else {
                0.80
            }
        }
        Engine::Matrix => match mode {
            ComputeMode::FloatToTf32 => 0.50,
            _ => 0.52,
        },
    }
}

/// Saturating utilisation term for one GEMM dimension.
#[inline]
fn dim_eff(d: usize, half: f64) -> f64 {
    let d = d as f64;
    d / (d + half)
}

/// Shape-dependent utilisation of the selected engine.
fn shape_efficiency(engine: Engine, m: usize, n: usize, k: usize) -> f64 {
    match engine {
        Engine::Vector => dim_eff(m, 16.0) * dim_eff(n, 16.0) * dim_eff(k, 128.0),
        Engine::Matrix => dim_eff(m, 32.0) * dim_eff(n, 32.0) * dim_eff(k, 512.0),
    }
}

/// The analytical model of one Xe-HPC stack.
#[derive(Clone, Copy, Debug)]
pub struct XeStackModel {
    /// The device being modelled.
    pub spec: DeviceSpec,
}

/// One mode's roofline prediction at a fixed (domain, shape) — the
/// advisor-facing row of [`XeStackModel::mode_predictions`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModePrediction {
    /// The compute mode priced.
    pub mode: ComputeMode,
    /// Modelled seconds of one GEMM call in that mode.
    pub seconds: f64,
    /// Modelled speedup over the `Standard` (FP32) baseline.
    pub speedup_vs_fp32: f64,
}

impl XeStackModel {
    /// Creates a model for the given stack.
    pub fn new(spec: DeviceSpec) -> Self {
        XeStackModel { spec }
    }

    /// Total HBM traffic of one GEMM call in bytes, including the
    /// conversion passes of the alternative compute modes.
    pub fn gemm_traffic_bytes(&self, desc: &GemmDesc) -> f64 {
        let planes = if desc.domain.is_complex() { 2.0 } else { 1.0 };
        let in_scalars = (desc.m * desc.k + desc.k * desc.n) as f64 * planes;
        let out_scalars = (desc.m * desc.n) as f64 * planes;
        let native = desc.domain.element_bytes() as f64 / planes; // bytes per real scalar

        // Inputs are always read once at native width; C written (and for
        // the multi-pass modes read back) once.
        let base = in_scalars * native + 2.0 * out_scalars * native;

        let conversion = match desc.mode {
            ComputeMode::Standard => 0.0,
            ComputeMode::Complex3m => {
                // Combined planes (Ar+Ai, Bi−Br, Br+Bi) written then read.
                in_scalars * native
            }
            _ => {
                let depth = desc.mode.split_depth().unwrap_or(1) as f64;
                let products = desc.mode.component_products() as f64;
                let conv_bytes = if desc.mode == ComputeMode::FloatToTf32 { 4.0 } else { 2.0 };
                // Write all component matrices once (each component plane
                // carries the full element count at the reduced width);
                // each component product re-reads one A-component and one
                // B-component plane pair.
                in_scalars * depth * conv_bytes + in_scalars * products * conv_bytes
            }
        };
        base + conversion
    }

    /// Compute-limited time of one GEMM call.
    pub fn gemm_compute_seconds(&self, desc: &GemmDesc) -> f64 {
        let fp64 = matches!(desc.domain, Domain::Real64 | Domain::Complex64);
        let engine = self.spec.engine_for_mode(desc.mode);
        let peak = self.spec.peak_for_mode(desc.mode, fp64);
        let eff = sustained_fraction(engine, desc.mode, fp64)
            * shape_efficiency(engine, desc.m, desc.n, desc.k);
        let flops = 2.0 * desc.real_macs();
        flops / (peak * eff)
    }

    /// Memory-limited time of one GEMM call.
    pub fn gemm_memory_seconds(&self, desc: &GemmDesc) -> f64 {
        self.gemm_traffic_bytes(desc) / (self.spec.hbm_bandwidth * GEMM_BW_EFF)
    }

    /// Full modelled time of one GEMM call.
    pub fn gemm_seconds(&self, desc: &GemmDesc) -> f64 {
        if desc.m == 0 || desc.n == 0 || desc.k == 0 {
            return self.spec.launch_latency;
        }
        self.gemm_compute_seconds(desc).max(self.gemm_memory_seconds(desc))
            + self.spec.launch_latency
    }

    /// Modelled speedup of `mode` over the FP32 baseline for one shape
    /// (the quantity plotted in Figure 3b).
    pub fn gemm_speedup_vs_fp32(&self, domain: Domain, m: usize, n: usize, k: usize, mode: ComputeMode) -> f64 {
        let base = GemmDesc { domain, m, n, k, mode: ComputeMode::Standard };
        let alt = GemmDesc { domain, m, n, k, mode };
        self.gemm_seconds(&base) / self.gemm_seconds(&alt)
    }

    /// Roofline prediction for every mode on the escalation ladder at
    /// one (domain, shape), ladder order. This is the join surface the
    /// offline precision advisor (`profile advise`) prices candidate
    /// modes against: each entry carries the full modelled call time
    /// and its speedup over the FP32 baseline, so a consumer can pick
    /// the cheapest mode among those an accuracy constraint allows.
    pub fn mode_predictions(
        &self,
        domain: Domain,
        m: usize,
        n: usize,
        k: usize,
    ) -> Vec<ModePrediction> {
        ComputeMode::ESCALATION_LADDER
            .iter()
            .map(|&mode| ModePrediction {
                mode,
                seconds: self.gemm_seconds(&GemmDesc { domain, m, n, k, mode }),
                speedup_vs_fp32: self.gemm_speedup_vs_fp32(domain, m, n, k, mode),
            })
            .collect()
    }

    /// Modelled time of a streaming (mesh) kernel.
    pub fn stream_seconds(&self, kernel: &StreamKernel) -> f64 {
        let t_mem = kernel.bytes / (self.spec.hbm_bandwidth * kernel.bandwidth_efficiency);
        let peak = if kernel.fp64 {
            // DP pointwise kernels additionally pay slower transcendental /
            // divide throughput on the vector engines.
            self.spec.peak_fp64 * 0.5
        } else {
            self.spec.peak_fp32
        };
        let t_cmp = kernel.flops / (peak * 0.6);
        t_mem.max(t_cmp) + self.spec.launch_latency
    }
}

impl DeviceTimeModel for XeStackModel {
    fn gemm_time(&self, desc: &GemmDesc) -> f64 {
        self.gemm_seconds(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MAX_1550_STACK;

    fn model() -> XeStackModel {
        XeStackModel::new(MAX_1550_STACK)
    }

    /// The paper's remap_occ sweep shape at N_orb = 4096 (Table VII row 4).
    fn biggest_sweep_shape() -> (usize, usize, usize) {
        (128, 3978, 262144)
    }

    #[test]
    fn bf16_max_observed_speedup_near_3_91() {
        // Paper Table VI: max observed BF16 speedup 3.91x (vs 16x peak).
        let (m, n, k) = biggest_sweep_shape();
        let s = model().gemm_speedup_vs_fp32(Domain::Complex32, m, n, k, ComputeMode::FloatToBf16);
        assert!((3.4..=4.4).contains(&s), "BF16 speedup {s} outside Table VI band");
    }

    #[test]
    fn speedups_never_exceed_theoretical() {
        let (m, n, k) = biggest_sweep_shape();
        let d = MAX_1550_STACK;
        for mode in ComputeMode::ALTERNATIVE {
            let s = model().gemm_speedup_vs_fp32(Domain::Complex32, m, n, k, mode);
            let t = d.theoretical_speedup(mode);
            assert!(s <= t, "{mode:?}: observed {s} > theoretical {t}");
            assert!(s > 1.0, "{mode:?}: mode slower than FP32 at the sweep shape ({s})");
        }
    }

    #[test]
    fn mode_ordering_matches_artifact() {
        // Artifact A1: fastest BF16, then TF32, BF16X2, BF16X3, Complex_3M.
        let (m, n, k) = biggest_sweep_shape();
        let s = |mode| model().gemm_speedup_vs_fp32(Domain::Complex32, m, n, k, mode);
        let bf16 = s(ComputeMode::FloatToBf16);
        let tf32 = s(ComputeMode::FloatToTf32);
        let x2 = s(ComputeMode::FloatToBf16x2);
        let x3 = s(ComputeMode::FloatToBf16x3);
        let c3m = s(ComputeMode::Complex3m);
        assert!(bf16 > tf32, "BF16 {bf16} <= TF32 {tf32}");
        assert!(tf32 > x2, "TF32 {tf32} <= BF16x2 {x2}");
        assert!(x2 > x3, "BF16x2 {x2} <= BF16x3 {x3}");
        assert!(x3 > c3m, "BF16x3 {x3} <= Complex3M {c3m}");
    }

    #[test]
    fn speedup_grows_with_orbital_count() {
        // Figure 3b: larger N_orb (larger n) => larger speedup, for every
        // accelerated mode.
        let k = 262144;
        let m = 128;
        let ns = [128usize, 896, 1920, 3978];
        for mode in [ComputeMode::FloatToBf16, ComputeMode::FloatToTf32, ComputeMode::FloatToBf16x2] {
            let sp: Vec<f64> = ns
                .iter()
                .map(|&n| model().gemm_speedup_vs_fp32(Domain::Complex32, m, n, k, mode))
                .collect();
            for w in sp.windows(2) {
                assert!(w[1] > w[0], "{mode:?}: speedups not increasing: {sp:?}");
            }
        }
    }

    #[test]
    fn bf16_at_sweep_shape_is_memory_bound() {
        // §V-C: "bandwidth limitations stem primarily from the relatively
        // small m = 128 dimension".
        let (m, n, k) = biggest_sweep_shape();
        let d = GemmDesc { domain: Domain::Complex32, m, n, k, mode: ComputeMode::FloatToBf16 };
        let mdl = model();
        assert!(
            mdl.gemm_memory_seconds(&d) > mdl.gemm_compute_seconds(&d),
            "BF16 at the sweep shape should be bandwidth-bound"
        );
        // ... whereas FP32 at the same shape is compute-bound.
        let d32 = GemmDesc { mode: ComputeMode::Standard, ..d };
        assert!(mdl.gemm_compute_seconds(&d32) > mdl.gemm_memory_seconds(&d32));
    }

    #[test]
    fn large_m_lifts_the_memory_cap() {
        // With a large m the same GEMM becomes compute-bound and BF16's
        // speedup rises well above the m=128 value.
        let mdl = model();
        let small = mdl.gemm_speedup_vs_fp32(Domain::Complex32, 128, 1024, 262144, ComputeMode::FloatToBf16);
        let large = mdl.gemm_speedup_vs_fp32(Domain::Complex32, 4096, 1024, 262144, ComputeMode::FloatToBf16);
        assert!(large > small * 1.3, "m sweep: {small} -> {large}");
    }

    #[test]
    fn fp64_gemm_slower_than_fp32() {
        let mdl = model();
        let t64 = mdl.gemm_seconds(&GemmDesc {
            domain: Domain::Complex64,
            m: 1024,
            n: 1024,
            k: 262144,
            mode: ComputeMode::Standard,
        });
        let t32 = mdl.gemm_seconds(&GemmDesc {
            domain: Domain::Complex32,
            m: 1024,
            n: 1024,
            k: 262144,
            mode: ComputeMode::Standard,
        });
        let r = t64 / t32;
        assert!((1.05..=2.5).contains(&r), "ZGEMM/CGEMM ratio {r}");
    }

    #[test]
    fn degenerate_gemm_costs_one_launch() {
        let mdl = model();
        let d = GemmDesc { domain: Domain::Real32, m: 0, n: 8, k: 8, mode: ComputeMode::Standard };
        assert_eq!(mdl.gemm_seconds(&d), MAX_1550_STACK.launch_latency);
    }

    #[test]
    fn traffic_accounts_for_conversion() {
        let mdl = model();
        let base = GemmDesc {
            domain: Domain::Complex32,
            m: 128,
            n: 1024,
            k: 262144,
            mode: ComputeMode::Standard,
        };
        let bf16 = GemmDesc { mode: ComputeMode::FloatToBf16, ..base };
        let x3 = GemmDesc { mode: ComputeMode::FloatToBf16x3, ..base };
        let t0 = mdl.gemm_traffic_bytes(&base);
        let t1 = mdl.gemm_traffic_bytes(&bf16);
        let t3 = mdl.gemm_traffic_bytes(&x3);
        assert!(t1 > t0, "conversion adds traffic");
        assert!(t3 > t1, "deeper splits add more traffic");
        // BF16 conversion adds a bf16 write + a bf16 read: half the FP32
        // input bytes each, doubling total traffic for input-dominated
        // shapes.
        assert!((t1 / t0 - 2.0).abs() < 0.1, "bf16 traffic ratio {}", t1 / t0);
    }

    #[test]
    fn mode_predictions_cover_the_ladder_consistently() {
        let (m, n, k) = biggest_sweep_shape();
        let preds = model().mode_predictions(Domain::Complex32, m, n, k);
        assert_eq!(preds.len(), ComputeMode::ESCALATION_LADDER.len());
        for (p, &mode) in preds.iter().zip(ComputeMode::ESCALATION_LADDER.iter()) {
            assert_eq!(p.mode, mode);
            assert!(p.seconds > 0.0 && p.seconds.is_finite());
            // Internal consistency: speedup must equal the baseline's
            // seconds over this mode's seconds.
            let base = preds.iter().find(|p| p.mode == ComputeMode::Standard).unwrap();
            assert!(
                (p.speedup_vs_fp32 - base.seconds / p.seconds).abs() < 1e-12,
                "{:?}: speedup {} vs ratio {}",
                p.mode,
                p.speedup_vs_fp32,
                base.seconds / p.seconds
            );
        }
        let std = preds.iter().find(|p| p.mode == ComputeMode::Standard).unwrap();
        assert_eq!(std.speedup_vs_fp32, 1.0);
    }

    #[test]
    fn stream_kernel_bandwidth_bound_case() {
        let mdl = model();
        let k = StreamKernel {
            name: "stencil_x",
            bytes: 14.5e9,
            flops: 1.0e9,
            fp64: false,
            bandwidth_efficiency: 0.125,
        };
        let t = mdl.stream_seconds(&k);
        let expect = 14.5e9 / (1.6e12 * 0.125);
        assert!((t - expect - MAX_1550_STACK.launch_latency).abs() < 1e-6, "{t} vs {expect}");
    }
}

//! `xe-gpu`: an analytical device model of one stack of the Intel Data
//! Center GPU Max Series 1550 ("Ponte Vecchio", Xe-HPC).
//!
//! The paper's performance results were measured on real hardware that a
//! reproduction cannot assume; this crate substitutes a calibrated
//! analytical model. It prices every device kernel DCMESH launches —
//! GEMMs through a roofline-plus-systolic-efficiency model, mesh kernels
//! through a bandwidth/occupancy model — and exposes a `unitrace`-style
//! tracer that accumulates the resulting simulated Level-Zero timeline.
//!
//! What is modelled (all terms documented on [`perf::XeStackModel`]):
//!
//! * vector-engine vs XMX matrix-engine peak throughput per precision
//!   (paper Table I),
//! * sustained-vs-peak derating for power/frequency throttling,
//! * shape-dependent systolic utilisation (small `m` starves the arrays),
//! * HBM traffic incl. the FP32→BF16/TF32 conversion passes of the
//!   alternative compute modes,
//! * per-kernel launch latency, and
//! * reduced effective bandwidth at low occupancy (small meshes).
//!
//! The model implements [`mkl_lite::device::DeviceTimeModel`], so once
//! installed every BLAS call in the process is automatically priced and
//! logged — exactly how `MKL_VERBOSE` timing drove the paper's Tables VI
//! and VII and Figure 3b.

//! ```
//! use mkl_lite::device::{Domain, GemmDesc};
//! use mkl_lite::ComputeMode;
//! use xe_gpu::{XeStackModel, MAX_1550_STACK};
//!
//! // Price the paper's remap_occ GEMM (Table VII, N_orb = 4096) in FP32
//! // and BF16: the modelled speedup reproduces the ~3.9x of Table VI.
//! let model = XeStackModel::new(MAX_1550_STACK);
//! let speedup = model.gemm_speedup_vs_fp32(
//!     Domain::Complex32, 128, 3968, 262_144, ComputeMode::FloatToBf16);
//! assert!(speedup > 3.4 && speedup < 4.4);
//! ```

pub mod derive;
pub mod device;
pub mod kernels;
pub mod perf;
pub mod power;
pub mod scale;
pub mod trace;

pub use device::{DeviceSpec, Engine, MAX_1550_STACK};
pub use kernels::{KernelDesc, StreamKernel};
pub use perf::{ModePrediction, XeStackModel};
pub use power::{PowerModel, MAX_1550_STACK_POWER};
pub use scale::{Fabric, MultiStackModel, HDR_FABRIC, XE_LINK};
pub use trace::{KernelEvent, Tracer};

/// Installs a [`XeStackModel`] for [`MAX_1550_STACK`] as the process-wide
/// BLAS device model and returns it.
pub fn install_default_model() -> std::sync::Arc<XeStackModel> {
    let model = std::sync::Arc::new(XeStackModel::new(MAX_1550_STACK));
    mkl_lite::device::install_device_model(model.clone());
    model
}

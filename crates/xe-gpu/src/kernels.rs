//! Device-kernel descriptors.
//!
//! LFD launches two kinds of device work: level-3 BLAS calls (priced by
//! the GEMM model) and streaming mesh kernels — stencils, pointwise
//! potential/field updates, reductions — priced by a bandwidth/occupancy
//! model. [`KernelDesc`] is the common currency between the LFD kernel
//! schedule and the device model: the accuracy runner executes the same
//! schedule numerically while the performance harness prices it
//! analytically at paper scale.

use mkl_lite::device::GemmDesc;

/// Default sustained HBM-bandwidth fraction of LFD's strided high-order
/// finite-difference sweeps over complex data.
///
/// This is the model's single calibrated constant: chosen so the 135-atom
/// FP32 run of 500 QD steps lands on the paper's measured 1472 s. All
/// other results are emergent.
pub const STENCIL_BW_EFF: f64 = 0.125;

/// Stencil halo radius used by the multi-stack decomposition (matches
/// the LFD 8th-order stencil).
pub const STENCIL_HALO_RADIUS: usize = 4;

/// Bandwidth fraction for simple pointwise (non-strided) sweeps.
pub const POINTWISE_BW_EFF: f64 = 0.45;

/// A streaming (non-GEMM) device kernel.
#[derive(Clone, Copy, Debug)]
pub struct StreamKernel {
    /// Kernel name as it would appear in a unitrace dump.
    pub name: &'static str,
    /// HBM bytes moved (reads + writes).
    pub bytes: f64,
    /// Floating-point operations executed.
    pub flops: f64,
    /// True when the kernel operates on FP64 data.
    pub fp64: bool,
    /// Sustained fraction of peak bandwidth this access pattern achieves.
    pub bandwidth_efficiency: f64,
}

impl StreamKernel {
    /// A strided stencil sweep over `elems` complex scalars of the given
    /// byte width, with `reads + writes` full-state passes.
    pub fn stencil(name: &'static str, elems: f64, elem_bytes: f64, passes: f64, flops_per_elem: f64, fp64: bool) -> Self {
        StreamKernel {
            name,
            bytes: elems * elem_bytes * passes,
            flops: elems * flops_per_elem,
            fp64,
            bandwidth_efficiency: STENCIL_BW_EFF,
        }
    }

    /// A pointwise sweep (no neighbour access).
    pub fn pointwise(name: &'static str, elems: f64, elem_bytes: f64, passes: f64, flops_per_elem: f64, fp64: bool) -> Self {
        StreamKernel {
            name,
            bytes: elems * elem_bytes * passes,
            flops: elems * flops_per_elem,
            fp64,
            bandwidth_efficiency: POINTWISE_BW_EFF,
        }
    }
}

/// One device kernel in an LFD schedule.
#[derive(Clone, Debug)]
pub enum KernelDesc {
    /// A level-3 BLAS call.
    Gemm(&'static str, GemmDesc),
    /// A streaming mesh kernel.
    Stream(StreamKernel),
}

impl KernelDesc {
    /// Kernel name for trace aggregation.
    pub fn name(&self) -> &'static str {
        match self {
            KernelDesc::Gemm(name, _) => name,
            KernelDesc::Stream(s) => s.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_constructor_accounting() {
        let k = StreamKernel::stencil("lap_x", 1.0e6, 8.0, 2.0, 16.0, false);
        assert_eq!(k.bytes, 1.6e7);
        assert_eq!(k.flops, 1.6e7);
        assert_eq!(k.bandwidth_efficiency, STENCIL_BW_EFF);
        assert!(!k.fp64);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn pointwise_faster_than_stencil_per_byte() {
        assert!(POINTWISE_BW_EFF > STENCIL_BW_EFF);
    }

    #[test]
    fn kernel_names() {
        let s = KernelDesc::Stream(StreamKernel::pointwise("vloc", 1.0, 8.0, 2.0, 2.0, false));
        assert_eq!(s.name(), "vloc");
    }
}

//! Multi-stack and multi-node scaling model.
//!
//! The paper's future work: "we would like to continue our work with
//! DCMESH in the analysis of how alternative BLAS precision modes impact
//! accuracy and performance in multi-stack and multi-node runs". This
//! module extends the single-stack device model to `S` stacks connected
//! by Xe-Link (and nodes by an HDR-class fabric), under the natural
//! domain decomposition for LFD:
//!
//! * the **grid** is sliced along x, each stack holding `N_grid/S × N_orb`
//!   of Ψ;
//! * **stencil sweeps** parallelise perfectly up to a halo exchange of
//!   `RADIUS` boundary planes per sweep;
//! * **grid-sized GEMMs** (`k = N_grid`) become local GEMMs with
//!   `k/S` plus a ring all-reduce of the subspace result (`n_orb²`
//!   complex entries);
//! * **subspace GEMMs** are replicated on every stack (no comm, no
//!   speedup).
//!
//! The interesting emergent effect: as `S` grows the local GEMM k-extent
//! shrinks and the calls slide down the roofline, so the *BF16 advantage
//! itself decays with scale* — a concrete, testable prediction for the
//! authors' future work.

use crate::device::DeviceSpec;
use crate::kernels::KernelDesc;
use crate::perf::XeStackModel;

/// Interconnect description.
#[derive(Clone, Copy, Debug)]
pub struct Fabric {
    /// Human-readable name.
    pub name: &'static str,
    /// Point-to-point bandwidth per direction, bytes/second.
    pub bandwidth: f64,
    /// Per-message latency, seconds.
    pub latency: f64,
}

/// Xe-Link between stacks of the same card / node (aggregate per stack).
pub const XE_LINK: Fabric = Fabric {
    name: "Xe-Link",
    bandwidth: 300.0e9,
    latency: 2.0e-6,
};

/// HDR-200 InfiniBand class fabric between nodes.
pub const HDR_FABRIC: Fabric = Fabric {
    name: "HDR-200",
    bandwidth: 25.0e9,
    latency: 5.0e-6,
};

/// A cluster of identical stacks.
#[derive(Clone, Copy, Debug)]
pub struct MultiStackModel {
    /// Per-stack model.
    pub stack: XeStackModel,
    /// Number of stacks.
    pub n_stacks: usize,
    /// Interconnect between them.
    pub fabric: Fabric,
}

impl MultiStackModel {
    /// Builds a model of `n_stacks` stacks of `spec` joined by `fabric`.
    pub fn new(spec: DeviceSpec, n_stacks: usize, fabric: Fabric) -> MultiStackModel {
        assert!(n_stacks >= 1, "need at least one stack");
        MultiStackModel { stack: XeStackModel::new(spec), n_stacks, fabric }
    }

    /// Time of a ring all-reduce of `bytes` across the stacks.
    pub fn allreduce_seconds(&self, bytes: f64) -> f64 {
        if self.n_stacks == 1 {
            return 0.0;
        }
        let s = self.n_stacks as f64;
        // Ring: 2(S−1)/S of the payload crosses each link, 2(S−1) steps.
        2.0 * (s - 1.0) / s * bytes / self.fabric.bandwidth
            + 2.0 * (s - 1.0) * self.fabric.latency
    }

    /// Time of the per-sweep halo exchange for a stencil of the given
    /// radius over an `n_grid × n_orb` complex state sliced along x.
    pub fn halo_seconds(&self, n_grid: usize, n_orb: usize, elem_bytes: f64, radius: usize) -> f64 {
        if self.n_stacks == 1 {
            return 0.0;
        }
        // Cross-section of the x-slicing: N_grid^(2/3) points per plane.
        let plane_points = (n_grid as f64).powf(2.0 / 3.0);
        let bytes = 2.0 * radius as f64 * plane_points * n_orb as f64 * elem_bytes;
        bytes / self.fabric.bandwidth + 2.0 * self.fabric.latency
    }

    /// Prices one device kernel under the decomposition.
    ///
    /// `n_grid`/`n_orb`/`elem_bytes` describe the full (undecomposed)
    /// state, needed for the communication terms.
    pub fn kernel_seconds(
        &self,
        kernel: &KernelDesc,
        n_grid: usize,
        n_orb: usize,
        elem_bytes: f64,
    ) -> f64 {
        let s = self.n_stacks;
        match kernel {
            KernelDesc::Stream(k) => {
                // Perfectly sliced sweep + halo.
                let mut local = *k;
                local.bytes /= s as f64;
                local.flops /= s as f64;
                self.stack.stream_seconds(&local)
                    + self.halo_seconds(n_grid, n_orb, elem_bytes, crate::kernels::STENCIL_HALO_RADIUS)
            }
            KernelDesc::Gemm(_, desc) => {
                if desc.k == n_grid {
                    // Grid-contracted GEMM: local k/S + all-reduce of the
                    // m×n complex result.
                    let mut local = *desc;
                    local.k = (desc.k / s).max(1);
                    let result_bytes = (desc.m * desc.n) as f64 * elem_bytes;
                    self.stack.gemm_seconds(&local) + self.allreduce_seconds(result_bytes)
                } else if desc.m == n_grid {
                    // Grid-sized output (nlp_expand): rows are sliced, the
                    // small B operand is already replicated. No comm.
                    let mut local = *desc;
                    local.m = (desc.m / s).max(1);
                    self.stack.gemm_seconds(&local)
                } else {
                    // Subspace GEMM: replicated on every stack.
                    self.stack.gemm_seconds(desc)
                }
            }
        }
    }

    /// Prices a full schedule (one QD step).
    pub fn schedule_seconds(
        &self,
        schedule: &[KernelDesc],
        n_grid: usize,
        n_orb: usize,
        elem_bytes: f64,
    ) -> f64 {
        schedule
            .iter()
            .map(|k| self.kernel_seconds(k, n_grid, n_orb, elem_bytes))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MAX_1550_STACK;
    use mkl_lite::device::{Domain, GemmDesc};
    use mkl_lite::ComputeMode;

    fn cluster(s: usize, fabric: Fabric) -> MultiStackModel {
        MultiStackModel::new(MAX_1550_STACK, s, fabric)
    }

    fn project_gemm() -> GemmDesc {
        GemmDesc {
            domain: Domain::Complex32,
            m: 1024,
            n: 1024,
            k: 96 * 96 * 96,
            mode: ComputeMode::Standard,
        }
    }

    #[test]
    fn single_stack_matches_base_model() {
        let m = cluster(1, XE_LINK);
        let d = project_gemm();
        let k = KernelDesc::Gemm("p", d);
        let t_multi = m.kernel_seconds(&k, d.k, 1024, 8.0);
        assert_eq!(t_multi, m.stack.gemm_seconds(&d));
        assert_eq!(m.allreduce_seconds(1e9), 0.0);
    }

    #[test]
    fn grid_gemm_scales_down_with_stacks() {
        let d = project_gemm();
        let k = KernelDesc::Gemm("p", d);
        let t1 = cluster(1, XE_LINK).kernel_seconds(&k, d.k, 1024, 8.0);
        let t2 = cluster(2, XE_LINK).kernel_seconds(&k, d.k, 1024, 8.0);
        let t8 = cluster(8, XE_LINK).kernel_seconds(&k, d.k, 1024, 8.0);
        assert!(t2 < t1 && t8 < t2, "no scaling: {t1} {t2} {t8}");
        // ... but sublinearly (communication + shrinking k efficiency).
        assert!(t8 > t1 / 8.0, "superlinear scaling is impossible here");
    }

    #[test]
    fn subspace_gemm_does_not_scale() {
        let d = GemmDesc {
            domain: Domain::Complex32,
            m: 1024,
            n: 1024,
            k: 1024,
            mode: ComputeMode::Standard,
        };
        let k = KernelDesc::Gemm("sub", d);
        let t1 = cluster(1, XE_LINK).kernel_seconds(&k, 884_736, 1024, 8.0);
        let t8 = cluster(8, XE_LINK).kernel_seconds(&k, 884_736, 1024, 8.0);
        assert_eq!(t1, t8, "replicated subspace work must not change");
    }

    #[test]
    fn slower_fabric_costs_more() {
        let d = project_gemm();
        let k = KernelDesc::Gemm("p", d);
        let fast = cluster(4, XE_LINK).kernel_seconds(&k, d.k, 1024, 8.0);
        let slow = cluster(4, HDR_FABRIC).kernel_seconds(&k, d.k, 1024, 8.0);
        assert!(slow > fast, "HDR must be slower than Xe-Link: {slow} vs {fast}");
    }

    #[test]
    fn allreduce_cost_grows_with_stacks_and_bytes() {
        let m4 = cluster(4, XE_LINK);
        let m8 = cluster(8, XE_LINK);
        assert!(m8.allreduce_seconds(1e8) > m4.allreduce_seconds(1e8));
        assert!(m4.allreduce_seconds(2e8) > m4.allreduce_seconds(1e8));
    }

    #[test]
    fn bf16_advantage_decays_with_scale() {
        // The emergent future-work prediction: at high stack counts the
        // local GEMMs shrink and communication grows, so BF16's per-step
        // advantage over FP32 declines.
        let speedup_at = |s: usize| {
            let mk = |mode| {
                let d = GemmDesc { mode, ..project_gemm() };
                cluster(s, XE_LINK).kernel_seconds(&KernelDesc::Gemm("p", d), d.k, 1024, 8.0)
            };
            mk(ComputeMode::Standard) / mk(ComputeMode::FloatToBf16)
        };
        let s1 = speedup_at(1);
        let s16 = speedup_at(16);
        assert!(
            s16 < s1,
            "BF16 advantage should decay with scale: {s1} -> {s16}"
        );
    }
}

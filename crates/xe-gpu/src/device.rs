//! Static description of one Xe-HPC stack (paper Table I, §III-A, §IV-A).

use mkl_lite::ComputeMode;

/// Which execution units a precision runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The 512-bit vector engines (8 per Xe core): FP64/FP32/FP16.
    Vector,
    /// The Intel XMX matrix engines (8 per Xe core): TF32/BF16/FP16/INT8
    /// systolic arrays.
    Matrix,
}

/// Hardware description of a single GPU stack.
///
/// Defaults come from the published Max 1550 specification used by the
/// paper: 448 EUs ("vector engines") at up to 1.6 GHz, 64 GB of HBM per
/// stack, and the Table I peak throughputs.
#[derive(Clone, Copy, Debug)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Number of vector engines (EUs) in the stack.
    pub vector_engines: u32,
    /// Number of XMX matrix engines in the stack.
    pub matrix_engines: u32,
    /// Maximum clock in GHz.
    pub max_ghz: f64,
    /// HBM capacity per stack in bytes.
    pub hbm_bytes: u64,
    /// Peak HBM bandwidth per stack, bytes/second.
    pub hbm_bandwidth: f64,
    /// L2 ("Rambo") cache per stack in bytes.
    pub l2_bytes: u64,
    /// Peak FP64 vector throughput, FLOP/s (Table I: 26 TFLOP/s).
    pub peak_fp64: f64,
    /// Peak FP32 vector throughput, FLOP/s (Table I: 26 TFLOP/s).
    pub peak_fp32: f64,
    /// Peak TF32 systolic throughput, FLOP/s (Table I: 209 TFLOP/s).
    pub peak_tf32: f64,
    /// Peak BF16 systolic throughput, FLOP/s (Table I: 419 TFLOP/s).
    pub peak_bf16: f64,
    /// Peak FP16 systolic throughput, FLOP/s (Table I: 419 TFLOP/s).
    pub peak_fp16: f64,
    /// Peak INT8 systolic throughput, OP/s (Table I: 839 TOP/s).
    pub peak_int8: f64,
    /// Kernel launch latency in seconds (Level-Zero submission +
    /// scheduling; a few microseconds on PVC).
    pub launch_latency: f64,
}

/// One stack of the Intel Data Center GPU Max Series 1550, as used for
/// every measurement in the paper ("we ran all experiments on a single
/// stack to avoid NUMA effects").
pub const MAX_1550_STACK: DeviceSpec = DeviceSpec {
    name: "Intel Data Center GPU Max 1550 (1 stack)",
    vector_engines: 448,
    matrix_engines: 448,
    max_ghz: 1.6,
    hbm_bytes: 64 * (1 << 30),
    // 128 GB HBM2e across two stacks gives ~3.2 TB/s per card.
    hbm_bandwidth: 1.6e12,
    l2_bytes: 204 * (1 << 20),
    peak_fp64: 26.0e12,
    peak_fp32: 26.0e12,
    peak_tf32: 209.0e12,
    peak_bf16: 419.0e12,
    peak_fp16: 419.0e12,
    peak_int8: 839.0e12,
    launch_latency: 4.0e-6,
};

impl DeviceSpec {
    /// Table I row: peak throughput (FLOP/s or OP/s) and engine type for a
    /// precision name.
    pub fn table1_row(&self, precision: &str) -> Option<(f64, Engine)> {
        match precision.to_ascii_uppercase().as_str() {
            "FP64" => Some((self.peak_fp64, Engine::Vector)),
            "FP32" => Some((self.peak_fp32, Engine::Vector)),
            "TF32" => Some((self.peak_tf32, Engine::Matrix)),
            "BF16" => Some((self.peak_bf16, Engine::Matrix)),
            "FP16" => Some((self.peak_fp16, Engine::Matrix)),
            "INT8" => Some((self.peak_int8, Engine::Matrix)),
            _ => None,
        }
    }

    /// The engine a compute mode's GEMM inner products execute on.
    pub fn engine_for_mode(&self, mode: ComputeMode) -> Engine {
        if mode.uses_matrix_engines() {
            Engine::Matrix
        } else {
            Engine::Vector
        }
    }

    /// Peak element-product throughput (real FLOP/s) available to a GEMM
    /// in the given compute mode, before any derating.
    pub fn peak_for_mode(&self, mode: ComputeMode, fp64: bool) -> f64 {
        match mode {
            ComputeMode::Standard | ComputeMode::Complex3m => {
                if fp64 {
                    self.peak_fp64
                } else {
                    self.peak_fp32
                }
            }
            ComputeMode::FloatToBf16
            | ComputeMode::FloatToBf16x2
            | ComputeMode::FloatToBf16x3 => self.peak_bf16,
            ComputeMode::FloatToTf32 => self.peak_tf32,
        }
    }

    /// Peak theoretical GEMM speedup of `mode` over FP32, counting the
    /// component products the mode must execute — reproduces paper
    /// Table II exactly.
    pub fn theoretical_speedup(&self, mode: ComputeMode) -> f64 {
        let peak_ratio = self.peak_for_mode(mode, false) / self.peak_fp32;
        match mode {
            // 3M replaces 4 real multiplies by 3 at the same peak.
            ComputeMode::Complex3m => 4.0 / 3.0,
            _ => peak_ratio / mode.component_products() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        let d = MAX_1550_STACK;
        assert_eq!(d.table1_row("FP64"), Some((26.0e12, Engine::Vector)));
        assert_eq!(d.table1_row("FP32"), Some((26.0e12, Engine::Vector)));
        assert_eq!(d.table1_row("TF32"), Some((209.0e12, Engine::Matrix)));
        assert_eq!(d.table1_row("BF16"), Some((419.0e12, Engine::Matrix)));
        assert_eq!(d.table1_row("FP16"), Some((419.0e12, Engine::Matrix)));
        assert_eq!(d.table1_row("INT8"), Some((839.0e12, Engine::Matrix)));
        assert_eq!(d.table1_row("FP8"), None);
    }

    #[test]
    fn table_ii_theoretical_speedups() {
        let d = MAX_1550_STACK;
        let close = |a: f64, b: f64| (a - b).abs() < 0.02 * b;
        assert!(close(d.theoretical_speedup(ComputeMode::FloatToBf16), 16.0));
        assert!(close(d.theoretical_speedup(ComputeMode::FloatToBf16x2), 16.0 / 3.0));
        assert!(close(d.theoretical_speedup(ComputeMode::FloatToBf16x3), 8.0 / 3.0));
        assert!(close(d.theoretical_speedup(ComputeMode::FloatToTf32), 8.0));
        assert!(close(d.theoretical_speedup(ComputeMode::Complex3m), 4.0 / 3.0));
    }

    #[test]
    fn mode_to_engine_mapping() {
        let d = MAX_1550_STACK;
        assert_eq!(d.engine_for_mode(ComputeMode::Standard), Engine::Vector);
        assert_eq!(d.engine_for_mode(ComputeMode::Complex3m), Engine::Vector);
        for m in [
            ComputeMode::FloatToBf16,
            ComputeMode::FloatToBf16x2,
            ComputeMode::FloatToBf16x3,
            ComputeMode::FloatToTf32,
        ] {
            assert_eq!(d.engine_for_mode(m), Engine::Matrix);
        }
    }

    #[test]
    fn stack_memory_holds_135_atom_system_but_not_double() {
        // Table V: the 96^3 x 1024-orbital system is the largest fitting
        // in the 64 GB stack. One c32 wave-function copy is ~7.25 GB and
        // the solver holds several copies plus work buffers.
        let psi_bytes = 96u64.pow(3) * 1024 * 8;
        assert!(psi_bytes * 8 < MAX_1550_STACK.hbm_bytes);
        let psi192 = 192u64.pow(3) * 2048 * 8;
        assert!(psi192 * 8 > MAX_1550_STACK.hbm_bytes);
    }
}

//! A unitrace-style kernel tracer over the simulated device timeline.
//!
//! The paper uses Intel PTI-GPU's `unitrace -k` to record per-kernel
//! GPU-side (Level-Zero) timings and reads the "Total L0 Time" off the top
//! of the dump (artifact A1). This tracer plays that role for the device
//! model: kernels are appended with their modelled durations on a
//! monotonically advancing simulated clock, and the dump offers the same
//! aggregates — total device time and a per-kernel breakdown.

use parking_lot::Mutex;

/// One kernel execution on the simulated timeline.
#[derive(Clone, Debug)]
pub struct KernelEvent {
    /// Kernel name.
    pub name: &'static str,
    /// Start timestamp on the simulated device clock, seconds.
    pub start: f64,
    /// Duration, seconds.
    pub duration: f64,
}

/// Per-kernel aggregate, like a unitrace summary row.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelSummary {
    /// Kernel name.
    pub name: &'static str,
    /// Number of executions.
    pub calls: usize,
    /// Total device seconds.
    pub total: f64,
}

/// Thread-safe simulated-timeline tracer.
#[derive(Default)]
pub struct Tracer {
    inner: Mutex<TracerInner>,
}

#[derive(Default)]
struct TracerInner {
    clock: f64,
    events: Vec<KernelEvent>,
}

impl Tracer {
    /// Creates an empty tracer with the clock at zero.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Records a kernel of `duration` seconds, advancing the clock.
    /// Returns the kernel's start timestamp. When the telemetry level is
    /// `full` the kernel also lands on the Chrome-trace device track as a
    /// complete (`X`) slice, mirroring `unitrace -k`'s per-kernel rows.
    pub fn record(&self, name: &'static str, duration: f64) -> f64 {
        assert!(duration >= 0.0 && duration.is_finite(), "bad kernel duration {duration}");
        let start = {
            let mut inner = self.inner.lock();
            let start = inner.clock;
            inner.clock += duration;
            inner.events.push(KernelEvent { name, start, duration });
            start
        };
        dcmesh_telemetry::device_complete(name, start, duration, Vec::new());
        start
    }

    /// Total simulated device time ("Total L0 Time").
    pub fn total_seconds(&self) -> f64 {
        self.inner.lock().clock
    }

    /// Number of recorded kernel events.
    pub fn event_count(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Returns a copy of the raw event list.
    pub fn events(&self) -> Vec<KernelEvent> {
        self.inner.lock().events.clone()
    }

    /// Per-kernel aggregates, sorted by descending total time.
    pub fn summary(&self) -> Vec<KernelSummary> {
        let inner = self.inner.lock();
        let mut rows: Vec<KernelSummary> = Vec::new();
        for ev in &inner.events {
            match rows.iter_mut().find(|r| r.name == ev.name) {
                Some(r) => {
                    r.calls += 1;
                    r.total += ev.duration;
                }
                None => rows.push(KernelSummary { name: ev.name, calls: 1, total: ev.duration }),
            }
        }
        rows.sort_by(|a, b| b.total.partial_cmp(&a.total).expect("finite totals"));
        rows
    }

    /// Clears all events and resets the clock.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.clock = 0.0;
        inner.events.clear();
    }

    /// Formats a unitrace-style dump: total first, then the breakdown.
    pub fn dump(&self) -> String {
        let mut out = format!("Total L0 Time: {:.6} s\n", self.total_seconds());
        out.push_str("Kernel                              Calls      Total(s)\n");
        for row in self.summary() {
            out.push_str(&format!("{:<36}{:>5}  {:>12.6}\n", row.name, row.calls, row.total));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let t = Tracer::new();
        let s0 = t.record("a", 1.0);
        let s1 = t.record("b", 2.0);
        let s2 = t.record("a", 0.5);
        assert_eq!((s0, s1, s2), (0.0, 1.0, 3.0));
        assert_eq!(t.total_seconds(), 3.5);
        assert_eq!(t.event_count(), 3);
    }

    #[test]
    fn summary_aggregates_and_sorts() {
        let t = Tracer::new();
        t.record("gemm", 5.0);
        t.record("stencil", 1.0);
        t.record("stencil", 1.5);
        let s = t.summary();
        assert_eq!(s[0].name, "gemm");
        assert_eq!(s[1], KernelSummary { name: "stencil", calls: 2, total: 2.5 });
    }

    #[test]
    fn dump_leads_with_total() {
        let t = Tracer::new();
        t.record("x", 0.25);
        let d = t.dump();
        assert!(d.starts_with("Total L0 Time: 0.250000 s"), "{d}");
        assert!(d.contains('x'));
    }

    #[test]
    fn reset_clears_everything() {
        let t = Tracer::new();
        t.record("x", 1.0);
        t.reset();
        assert_eq!(t.total_seconds(), 0.0);
        assert_eq!(t.event_count(), 0);
    }

    #[test]
    #[should_panic(expected = "bad kernel duration")]
    fn negative_duration_rejected() {
        Tracer::new().record("x", -1.0);
    }

    #[test]
    fn record_emits_device_telemetry_at_full() {
        use dcmesh_telemetry as telemetry;
        telemetry::with_level(telemetry::TelemetryLevel::Full, || {
            telemetry::sink::clear();
            let t = Tracer::new();
            t.record("trace_test_kernel", 0.002);
            let evs = telemetry::sink::drain();
            let ev = evs.iter().find(|e| e.name == "trace_test_kernel").expect("kernel event");
            assert_eq!(ev.track, telemetry::Track::Device);
            assert_eq!(ev.kind, telemetry::EventKind::Complete { dur_ns: 2_000_000 });
        });
    }

    #[test]
    fn tracer_is_thread_safe() {
        let t = std::sync::Arc::new(Tracer::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        t.record("k", 0.001);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(t.event_count(), 800);
        assert!((t.total_seconds() - 0.8).abs() < 1e-9);
    }
}

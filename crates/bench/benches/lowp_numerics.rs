//! Criterion micro-benchmarks of the low-precision numeric substrate:
//! BF16/TF32 quantisation and the split-precision decompositions — the
//! per-element overhead the `FLOAT_TO_*` emulation pays on the host.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dcmesh_numerics::bf16;
use dcmesh_numerics::split::split_slice;
use dcmesh_numerics::tf32;
use std::hint::black_box;

fn bench_quantize(c: &mut Criterion) {
    let src: Vec<f32> = (0..1 << 16).map(|i| (i as f32 * 0.37).sin() * 5.0).collect();
    let mut dst = vec![0.0f32; src.len()];
    let mut group = c.benchmark_group("quantize");
    group.throughput(Throughput::Elements(src.len() as u64));
    group.bench_function("bf16", |b| {
        b.iter(|| {
            bf16::quantize_slice(black_box(&src), &mut dst);
            black_box(dst[17]);
        })
    });
    group.bench_function("tf32", |b| {
        b.iter(|| {
            tf32::quantize_slice(black_box(&src), &mut dst);
            black_box(dst[17]);
        })
    });
    group.finish();
}

fn bench_split(c: &mut Criterion) {
    let src: Vec<f32> = (0..1 << 16).map(|i| (i as f32 * 0.11).cos() * 3.0).collect();
    let mut group = c.benchmark_group("split");
    group.throughput(Throughput::Elements(src.len() as u64));
    for depth in [2usize, 3] {
        group.bench_function(format!("depth{depth}"), |b| {
            let mut planes: Vec<Vec<f32>> = (0..depth).map(|_| vec![0.0; src.len()]).collect();
            b.iter(|| {
                let mut views: Vec<&mut [f32]> =
                    planes.iter_mut().map(|p| p.as_mut_slice()).collect();
                split_slice(black_box(&src), &mut views);
                black_box(planes[0][3]);
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_quantize, bench_split
);
criterion_main!(benches);

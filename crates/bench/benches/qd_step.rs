//! Criterion benchmark of a full QD step (host execution, laptop deck):
//! the end-to-end cost of propagation + nonlocal correction + BLASified
//! observables per compute mode, plus the SCF refresh.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcmesh_lfd::propagator::{qd_step, QdScratch};
use dcmesh_lfd::state::cosine_potential;
use dcmesh_lfd::{LaserPulse, LfdParams, LfdState, Mesh3};
use dcmesh_qxmd::scf::scf_refresh;
use mkl_lite::{with_compute_mode, ComputeMode};
use std::hint::black_box;

fn params() -> LfdParams {
    LfdParams {
        mesh: Mesh3::cubic(12, 0.6),
        n_orb: 16,
        n_occ: 8,
        dt: 0.02,
        vnl_strength: 0.2,
        taylor_order: 4,
        laser: LaserPulse { amplitude: 0.3, omega: 0.3, duration: 1e6, phase: 0.0 },
        induced_coupling: 0.0,
    }
}

fn bench_qd_step(c: &mut Criterion) {
    let p = params();
    let mut group = c.benchmark_group("qd_step");
    for mode in ComputeMode::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |bch, &mode| {
            let mut st = LfdState::<f32>::initialize(&p, cosine_potential(&p.mesh, 0.2));
            let mut scratch = QdScratch::new(&p);
            bch.iter(|| {
                let obs = with_compute_mode(mode, || qd_step(&p, &mut st, &mut scratch));
                black_box(obs.ekin);
            });
        });
    }
    group.finish();
}

fn bench_scf_refresh(c: &mut Criterion) {
    let p = params();
    c.bench_function("scf_refresh_fp64", |bch| {
        let mut st = LfdState::<f32>::initialize(&p, cosine_potential(&p.mesh, 0.2));
        bch.iter(|| {
            let rep = scf_refresh(&p, &mut st).expect("overlap healthy");
            black_box(rep.defect_after);
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_qd_step, bench_scf_refresh
);
criterion_main!(benches);

//! Criterion benchmarks of the dense and iterative solvers: the FP64
//! substrate the SCF refresh leans on, and the CheFSI/divide-and-conquer
//! machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcmesh_lfd::divide::{dc_ground_state, well_per_domain_potential, DcConfig};
use dcmesh_lfd::eigensolve::lowest_eigenpairs;
use dcmesh_lfd::Mesh3;
use dcmesh_linalg::hermitian::eigh;
use dcmesh_linalg::ops::hermitian_from_fn;
use dcmesh_linalg::orth::{cholesky_orthonormalize, lowdin_orthonormalize};
use dcmesh_numerics::{c32, c64, C32};
use mkl_lite::{cherk, Op, Uplo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_eigh(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigh_jacobi");
    for n in [8usize, 16, 32, 64] {
        let a = hermitian_from_fn(n, |i, j| {
            c64(((i * 7 + j * 3) % 11) as f64 / 11.0, if i == j { 0.0 } else { ((i + 5 * j) % 13) as f64 / 13.0 - 0.5 })
        });
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let r = eigh(black_box(&a), n);
                black_box(r.eigenvalues[0]);
            });
        });
    }
    group.finish();
}

fn bench_orthonormalisation(c: &mut Criterion) {
    let (rows, cols) = (2048usize, 24usize);
    // Random columns: generic full-rank input (deterministic trig patterns
    // can be numerically rank-deficient at this aspect ratio).
    let mut rng = StdRng::seed_from_u64(99);
    let base: Vec<_> = (0..rows * cols)
        .map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let mut group = c.benchmark_group("orthonormalise_2048x24");
    group.bench_function("lowdin", |b| {
        b.iter(|| {
            let mut a = base.clone();
            lowdin_orthonormalize(&mut a, rows, cols).expect("full-rank input");
            black_box(a[0]);
        });
    });
    group.bench_function("cholesky", |b| {
        b.iter(|| {
            let mut a = base.clone();
            cholesky_orthonormalize(&mut a, rows, cols).expect("full-rank input");
            black_box(a[0]);
        });
    });
    group.finish();
}

fn bench_cherk(c: &mut Criterion) {
    let (n, k) = (24usize, 4096usize);
    let a: Vec<C32> = (0..k * n)
        .map(|i| c32((i as f32 * 0.21).sin(), (i as f32 * 0.13).cos()))
        .collect();
    c.bench_function("cherk_overlap_24x4096", |b| {
        let mut out = vec![C32::zero(); n * n];
        b.iter(|| {
            cherk(Uplo::Upper, Op::ConjTrans, n, k, 1.0, black_box(&a), n, 0.0, &mut out, n);
            black_box(out[0]);
        });
    });
}

fn bench_chefsi(c: &mut Criterion) {
    let mesh = Mesh3::cubic(10, 0.6);
    let vloc: Vec<f64> = dcmesh_lfd::state::cosine_potential(&mesh, 0.4);
    c.bench_function("chefsi_10cube_4states", |b| {
        b.iter(|| {
            let sol = lowest_eigenpairs(black_box(&mesh), &vloc, 4, 20, 1e-9, None);
            black_box(sol.eigenvalues[0]);
        });
    });
}

fn bench_dc_solver(c: &mut Criterion) {
    let mesh = Mesh3::cubic(12, 0.8);
    let cfg = DcConfig { divisions: 2, buffer: 2, states_per_domain: 2, solver_iterations: 40 };
    let vloc = well_per_domain_potential(&mesh, &cfg, 2.0, 1.2);
    c.bench_function("dc_ground_state_12cube_8domains", |b| {
        b.iter(|| {
            let dc = dc_ground_state(black_box(&mesh), &vloc, 16, &cfg);
            black_box(dc.band_energy);
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_eigh, bench_orthonormalisation, bench_cherk, bench_chefsi, bench_dc_solver
);
criterion_main!(benches);

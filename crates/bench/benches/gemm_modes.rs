//! Criterion micro-benchmarks of the mkl-lite GEMM paths.
//!
//! These measure the *host* cost of the software-emulated compute modes
//! (quantisation, split decomposition, component products) — useful for
//! library development. GPU-time questions go through the `xe-gpu` model
//! instead (`fig3b`, `table6`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcmesh_numerics::{c32, C32};
use mkl_lite::{cgemm, sgemm, with_compute_mode, ComputeMode, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn rand_f32(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn rand_c32(rng: &mut StdRng, len: usize) -> Vec<C32> {
    (0..len).map(|_| c32(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

fn bench_sgemm_modes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let (m, n, k) = (128, 128, 512);
    let a = rand_f32(&mut rng, m * k);
    let b = rand_f32(&mut rng, k * n);
    let mut out = vec![0.0f32; m * n];

    let mut group = c.benchmark_group("sgemm_modes");
    group.throughput(Throughput::Elements((m * n * k) as u64));
    for mode in ComputeMode::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |bch, &mode| {
            bch.iter(|| {
                with_compute_mode(mode, || {
                    sgemm(
                        Op::None,
                        Op::None,
                        m,
                        n,
                        k,
                        1.0,
                        black_box(&a),
                        k,
                        black_box(&b),
                        n,
                        0.0,
                        &mut out,
                        n,
                    );
                });
                black_box(out[0]);
            });
        });
    }
    group.finish();
}

fn bench_cgemm_modes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(43);
    // The remap_occ shape at laptop scale: panel GEMM with large k.
    let (m, n, k) = (32, 96, 4096);
    let a = rand_c32(&mut rng, m * k);
    let b = rand_c32(&mut rng, k * n);
    let mut out = vec![C32::zero(); m * n];

    let mut group = c.benchmark_group("cgemm_modes");
    group.throughput(Throughput::Elements((m * n * k) as u64));
    for mode in ComputeMode::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |bch, &mode| {
            bch.iter(|| {
                with_compute_mode(mode, || {
                    cgemm(
                        Op::None,
                        Op::None,
                        m,
                        n,
                        k,
                        C32::one(),
                        black_box(&a),
                        k,
                        black_box(&b),
                        n,
                        C32::zero(),
                        &mut out,
                        n,
                    );
                });
                black_box(out[0]);
            });
        });
    }
    group.finish();
}

fn bench_projection_shapes(c: &mut Criterion) {
    // The three GEMM shapes of one QD step at small scale: project
    // (norb x norb x ngrid), expand (ngrid x norb x norb), subspace.
    let mut rng = StdRng::seed_from_u64(44);
    let (ngrid, norb) = (4096usize, 32usize);
    let psi = rand_c32(&mut rng, ngrid * norb);
    let coef = rand_c32(&mut rng, norb * norb);

    let mut group = c.benchmark_group("qd_gemm_shapes");
    group.bench_function("nlp_project", |bch| {
        let mut out = vec![C32::zero(); norb * norb];
        bch.iter(|| {
            cgemm(
                Op::ConjTrans,
                Op::None,
                norb,
                norb,
                ngrid,
                C32::one(),
                black_box(&psi),
                norb,
                black_box(&psi),
                norb,
                C32::zero(),
                &mut out,
                norb,
            );
            black_box(out[0]);
        });
    });
    group.bench_function("nlp_expand", |bch| {
        let mut out = psi.clone();
        bch.iter(|| {
            cgemm(
                Op::None,
                Op::None,
                ngrid,
                norb,
                norb,
                C32::one(),
                black_box(&psi),
                norb,
                black_box(&coef),
                norb,
                C32::one(),
                &mut out,
                norb,
            );
            black_box(out[0]);
        });
    });
    group.bench_function("subspace", |bch| {
        let mut out = vec![C32::zero(); norb * norb];
        bch.iter(|| {
            cgemm(
                Op::ConjTrans,
                Op::None,
                norb,
                norb,
                norb,
                C32::one(),
                black_box(&coef),
                norb,
                black_box(&coef),
                norb,
                C32::zero(),
                &mut out,
                norb,
            );
            black_box(out[0]);
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sgemm_modes, bench_cgemm_modes, bench_projection_shapes
);
criterion_main!(benches);

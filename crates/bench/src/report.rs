//! Small reporting helpers shared by the table/figure binaries.

use std::io::Write;
use std::path::Path;

/// Renders rows as a GitHub-flavoured markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Writes a report file under `target/reports/`, creating directories as
/// needed, and echoes the path.
pub fn write_report(name: &str, contents: &str) -> std::io::Result<()> {
    let dir = Path::new("target/reports");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(contents.as_bytes())?;
    eprintln!("[report written to {}]", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t, "| a | b |\n|---|---|\n| 1 | 2 |\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        markdown_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}

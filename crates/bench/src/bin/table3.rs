//! Table III: key simulation parameters, read from the shipped decks.

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh_bench::{markdown_table, write_report};

fn main() {
    let cfg = RunConfig::preset(SystemPreset::Pto135);
    let rows = vec![
        vec!["Timestep".to_string(), format!("{}", cfg.dt)],
        vec!["Total Number of QD Steps".to_string(), format!("{}", cfg.total_qd_steps)],
        vec![
            "Total Simulation Time (fs)".to_string(),
            format!("{:.0}", cfg.total_time_fs()),
        ],
    ];
    let table = markdown_table(&["Simulation Variable", "Value"], &rows);
    println!("Table III — key simulation parameters\n");
    println!("{table}");
    write_report("table3.md", &table).expect("report");
}

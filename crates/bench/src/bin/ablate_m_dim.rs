//! Ablation: the GEMM m-dimension bottleneck.
//!
//! The paper blames the 3.91x-observed-vs-16x-theoretical BF16 gap on
//! "the relatively small m = 128 dimension" keeping the call bandwidth-
//! bound. This sweep holds n and k at the remap_occ values and varies m,
//! showing the speedup climbing toward the compute-bound ceiling as the
//! panel fattens — and reporting where the roofline crossover sits.

use dcmesh_bench::{markdown_table, write_report};
use mkl_lite::device::{Domain, GemmDesc};
use mkl_lite::ComputeMode;
use xe_gpu::{XeStackModel, MAX_1550_STACK};

fn main() {
    let model = XeStackModel::new(MAX_1550_STACK);
    let (n, k) = (3968usize, 262_144usize);
    let mut rows = Vec::new();
    for m in [32usize, 64, 128, 256, 512, 1024, 2048, 4096] {
        let speedup = model.gemm_speedup_vs_fp32(Domain::Complex32, m, n, k, ComputeMode::FloatToBf16);
        let d = GemmDesc { domain: Domain::Complex32, m, n, k, mode: ComputeMode::FloatToBf16 };
        let bound = if model.gemm_memory_seconds(&d) > model.gemm_compute_seconds(&d) {
            "memory"
        } else {
            "compute"
        };
        let marker = if m == 128 { "  <- paper's DCMESH shape" } else { "" };
        rows.push(vec![
            format!("{m}{marker}"),
            format!("{:.2}x", speedup),
            bound.to_string(),
        ]);
    }
    let table = markdown_table(&["m", "BF16 speedup vs FP32", "BF16 bound by"], &rows);
    println!("Ablation — m-dimension sweep at n = 3968, k = 64^3 (BF16)\n\n{table}");
    println!("at m = 128 the BF16 call is HBM-bound (≈3.9x); growing m raises arithmetic");
    println!("intensity until the XMX compute roof takes over.");
    write_report("ablate_m_dim.md", &table).expect("report");
}

//! Table II: available BLAS compute modes, their environment-variable
//! values, and peak theoretical speedup relative to FP32.

use dcmesh_bench::{markdown_table, write_report};
use mkl_lite::ComputeMode;

fn main() {
    let rows: Vec<Vec<String>> = ComputeMode::ALTERNATIVE
        .iter()
        .map(|&m| {
            let speedup = match m {
                // The paper leaves the Complex_3m cell blank (4/3 in text).
                ComputeMode::Complex3m => "(4/3)x".to_string(),
                ComputeMode::FloatToBf16 => "16x".to_string(),
                ComputeMode::FloatToBf16x2 => "(16/3)x".to_string(),
                ComputeMode::FloatToBf16x3 => "(8/3)x".to_string(),
                ComputeMode::FloatToTf32 => "8x".to_string(),
                ComputeMode::Standard => unreachable!(),
            };
            // Cross-check the display string against the numeric model.
            let numeric = m.theoretical_speedup();
            assert!(numeric > 1.0, "{m:?} speedup {numeric}");
            vec![m.label().to_string(), m.env_value().expect("alt mode").to_string(), speedup]
        })
        .collect();
    let table = markdown_table(
        &["Compute Mode", "Environment Variable", "Peak Theoretical"],
        &rows,
    );
    println!("Table II — available BLAS compute modes (vs FP32)\n");
    println!("{table}");
    println!("set via: export MKL_BLAS_COMPUTE_MODE=<Environment Variable>");
    write_report("table2.md", &table).expect("report");
}

//! Extension experiment: per-call mixed BLAS precision.
//!
//! "The effects of running different BLAS calls at different levels of
//! precision is left to future work" (paper §IV-D) — oneMKL's env-var
//! control cannot do it, a library-level control can. This harness
//! compares four policies:
//!
//! * **FP32** — the reference.
//! * **BF16 uniform** — the paper's `FLOAT_TO_BF16` configuration.
//! * **BF16 fast-propagation** — BF16 only on the three `nlp_prop` calls
//!   (the trajectory movers, two of which are grid-sized); all
//!   observable-producing calls stay FP32.
//! * **BF16 safe-observables** — BF16 everywhere except the kinetic-
//!   energy and occupation reductions.
//!
//! Accuracy comes from real runs at laptop scale; speed from the device
//! model at the full 135-atom size.

use dcmesh::analysis::{DeviationSeries, Metric};
use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::runner::{run_simulation, run_simulation_with_policy};
use dcmesh_bench::{markdown_table, write_report};
use dcmesh_lfd::schedule::{price_qd_step, qd_step_schedule_with_policy, LfdPrecision, SystemShape};
use dcmesh_lfd::PrecisionPolicy;
use mkl_lite::{with_compute_mode, ComputeMode};
use xe_gpu::{XeStackModel, MAX_1550_STACK};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.mesh_points = 10;
    cfg.n_orb = 10;
    cfg.n_occ = 5;
    cfg.total_qd_steps = 400;
    cfg.qd_steps_per_md = 200;
    cfg.laser_duration_fs = 0.2;
    cfg.laser_amplitude = 0.35;

    eprintln!("reference run (FP32)...");
    let reference = with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))?;

    let policies: [(&str, PrecisionPolicy); 4] = [
        ("BF16 uniform", PrecisionPolicy::uniform(ComputeMode::FloatToBf16)),
        ("BF16 fast-propagation", PrecisionPolicy::fast_propagation(ComputeMode::FloatToBf16)),
        ("BF16 safe-observables", PrecisionPolicy::safe_observables(ComputeMode::FloatToBf16)),
        (
            // Everything BF16 except the Table VII remap projection: how
            // much accuracy does protecting nexc alone buy?
            "BF16 + FP32 remap",
            PrecisionPolicy::uniform(ComputeMode::FloatToBf16)
                .with_site(dcmesh_lfd::CallSite::RemapProjection, ComputeMode::Standard)
                .with_site(dcmesh_lfd::CallSite::RemapWeights, ComputeMode::Standard),
        ),
    ];

    let model = XeStackModel::new(MAX_1550_STACK);
    let shape = SystemShape::pto135();
    let base = LfdPrecision::Fp32(ComputeMode::Standard);
    let fp32_step = price_qd_step(
        &model,
        &qd_step_schedule_with_policy(shape, base, &PrecisionPolicy::uniform(ComputeMode::Standard)),
        None,
    );

    let mut rows = vec![vec![
        "FP32 (reference)".to_string(),
        "0".to_string(),
        "0".to_string(),
        "1.00x".to_string(),
    ]];
    for (name, policy) in &policies {
        eprintln!("policy run: {name}...");
        let run = with_compute_mode(ComputeMode::Standard, || {
            run_simulation_with_policy::<f32>(&cfg, policy)
        })?;
        let ekin_dev =
            DeviationSeries::build(Metric::Ekin, &run.records, &reference.records).max_abs();
        let nexc_dev =
            DeviationSeries::build(Metric::Nexc, &run.records, &reference.records).max_abs();
        let step = price_qd_step(&model, &qd_step_schedule_with_policy(shape, base, policy), None);
        rows.push(vec![
            name.to_string(),
            format!("{ekin_dev:.2e}"),
            format!("{nexc_dev:.2e}"),
            format!("{:.2}x", fp32_step / step),
        ]);
    }

    let table = markdown_table(
        &[
            "Policy",
            "max |Δekin| vs FP32 (Ha)",
            "max |Δnexc| vs FP32",
            "Modelled 135-atom speedup",
        ],
        &rows,
    );
    println!("Extension — per-call mixed BLAS precision (paper future work)\n");
    println!("{table}");
    println!("fast-propagation keeps most of BF16's end-to-end speedup (the nlp calls");
    println!("dominate BLAS time) while the *measured* observables are computed at full");
    println!("FP32; the trajectory itself still carries BF16 propagation error.");
    write_report("ext_mixed_precision.md", &table).expect("report");
    Ok(())
}

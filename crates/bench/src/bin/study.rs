//! The whole study in one command.
//!
//! Regenerates every table and figure of the paper plus the ablations and
//! extensions, writing a consolidated markdown report to
//! `target/reports/study.md`. The accuracy figures run at laptop scale
//! (pass `--full` to lengthen them); the performance artifacts are priced
//! on the device model at the published sizes in milliseconds.
//!
//! ```text
//! cargo run --release -p dcmesh-bench --bin study
//! ```

use dcmesh::analysis::{DeviationSeries, Metric};
use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::perf::{figure3a, figure3b, table6, FIG3B_ORBITALS};
use dcmesh::runner::run_simulation;
use dcmesh_bench::{markdown_table, write_report};
use dcmesh_lfd::schedule::SystemShape;
use dcmesh_numerics::FORMATS;
use mkl_lite::{with_compute_mode, ComputeMode};
use xe_gpu::MAX_1550_STACK;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let mut report = String::from("# DCMESH-rs — consolidated study report\n");

    // ---- Tables I, II, IV: static artifacts ----
    report.push_str("\n## Table I — theoretical peaks (1 stack)\n\n");
    let rows: Vec<Vec<String>> = ["FP64", "FP32", "TF32", "BF16", "FP16", "INT8"]
        .iter()
        .map(|&p| {
            let (peak, eng) = MAX_1550_STACK.table1_row(p).expect("known");
            vec![p.into(), format!("{:.0} T/s", peak / 1e12), format!("{eng:?}")]
        })
        .collect();
    report.push_str(&markdown_table(&["Precision", "Peak", "Engine"], &rows));

    report.push_str("\n## Table II — compute modes\n\n");
    let rows: Vec<Vec<String>> = ComputeMode::ALTERNATIVE
        .iter()
        .map(|m| {
            vec![
                m.label().into(),
                m.env_value().expect("alt").into(),
                format!("{:.2}x", m.theoretical_speedup()),
            ]
        })
        .collect();
    report.push_str(&markdown_table(&["Mode", "Env value", "Peak speedup"], &rows));

    report.push_str("\n## Table IV — precision formats\n\n");
    let rows: Vec<Vec<String>> = FORMATS
        .iter()
        .map(|f| vec![f.name.into(), f.exponent_bits.to_string(), f.mantissa_bits.to_string()])
        .collect();
    report.push_str(&markdown_table(&["Format", "Exp bits", "Mantissa bits"], &rows));

    // ---- Figures 1-2: accuracy (real runs) ----
    let mut cfg = RunConfig::preset(SystemPreset::Pto135Small);
    cfg.total_qd_steps = if full { 21_000 } else { 600 };
    cfg.record_every = 5;
    eprintln!("accuracy runs ({} QD steps x 6 configurations)...", cfg.total_qd_steps);
    let reference = with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))?;
    report.push_str("\n## Figures 1-2 — max |deviation from FP32|\n\n");
    let mut rows = Vec::new();
    for mode in ComputeMode::ALTERNATIVE {
        eprintln!("  mode {}...", mode.label());
        let run = with_compute_mode(mode, || run_simulation::<f32>(&cfg))?;
        let dev = |m: Metric| {
            DeviationSeries::build(m, &run.records, &reference.records).max_abs()
        };
        rows.push(vec![
            mode.label().into(),
            format!("{:.3e}", dev(Metric::Nexc)),
            format!("{:.3e}", dev(Metric::Javg)),
            format!("{:.3e}", dev(Metric::Ekin)),
        ]);
    }
    report.push_str(&markdown_table(&["Mode", "nexc", "javg", "ekin (Ha)"], &rows));

    // ---- Figure 3a ----
    for (name, shape) in [("40 atoms", SystemShape::pto40()), ("135 atoms", SystemShape::pto135())] {
        report.push_str(&format!("\n## Figure 3a — {name}, 500 QD steps (modelled)\n\n"));
        let rows: Vec<Vec<String>> = figure3a(shape)
            .iter()
            .map(|p| vec![p.label.into(), format!("{:.1} s", p.seconds_500_steps)])
            .collect();
        report.push_str(&markdown_table(&["Precision", "Time"], &rows));
    }

    // ---- Figure 3b + Table VI ----
    report.push_str("\n## Figure 3b — per-call speedup vs N_orb (modelled)\n\n");
    let headers: Vec<String> = std::iter::once("Mode".to_string())
        .chain(FIG3B_ORBITALS.iter().map(|n| format!("N={n}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = ComputeMode::ALTERNATIVE
        .iter()
        .map(|&m| {
            let mut row = vec![m.label().to_string()];
            row.extend(figure3b(m).iter().map(|p| format!("{:.2}x", p.speedup)));
            row
        })
        .collect();
    report.push_str(&markdown_table(&header_refs, &rows));

    report.push_str("\n## Table VI — max observed vs theoretical\n\n");
    let rows: Vec<Vec<String>> = table6()
        .iter()
        .map(|r| {
            vec![
                r.mode.label().into(),
                format!("{:.2}x", r.max_observed),
                format!("{:.2}x", r.theoretical),
            ]
        })
        .collect();
    report.push_str(&markdown_table(&["Mode", "Observed", "Theoretical"], &rows));

    println!("{report}");
    write_report("study.md", &report).expect("report");
    eprintln!("\n(run the individual bins — table7, fig1, fig2, ablate_*, ext_* — for the");
    eprintln!("remaining artifacts and CSV series; see EXPERIMENTS.md for the index.)");
    Ok(())
}

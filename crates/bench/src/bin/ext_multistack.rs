//! Extension experiment: multi-stack / multi-node scaling of the
//! precision modes (the paper's second piece of stated future work).
//!
//! Prices one QD step of the 135-atom system on 1–16 Max 1550 stacks
//! (Xe-Link) and on multi-node HDR fabric, per compute mode, under the
//! grid decomposition described in `xe_gpu::scale`. Two emergent
//! results worth noting:
//!
//! * parallel efficiency decays through the replicated subspace work and
//!   the all-reduces (Amdahl), and
//! * the BF16 end-to-end advantage itself shrinks with scale, because the
//!   local GEMMs slide down the roofline as `k/S` drops.
//!
//! This binary is purely *analytic* — it prices hypothetical hardware on
//! the device model and spawns nothing. Actually running multi-process
//! is `dcmesh::shard` / the `dcmesh-shard` binary, which shards real
//! domains across worker ranks with failure detection and
//! checkpoint-replay recovery.

use dcmesh_bench::{markdown_table, write_report};
use dcmesh_lfd::schedule::{qd_step_schedule, LfdPrecision, SystemShape};
use mkl_lite::ComputeMode;
use xe_gpu::{MultiStackModel, HDR_FABRIC, MAX_1550_STACK, XE_LINK};

fn main() {
    let shape = SystemShape::pto135();
    let stacks = [1usize, 2, 4, 8, 16];

    for (fname, fabric) in [("Xe-Link (one node)", XE_LINK), ("HDR-200 (multi-node)", HDR_FABRIC)] {
        let mut rows = Vec::new();
        for &s in &stacks {
            let cluster = MultiStackModel::new(MAX_1550_STACK, s, fabric);
            let step = |precision: LfdPrecision| {
                let sched = qd_step_schedule(shape, precision);
                cluster.schedule_seconds(&sched, shape.n_grid, shape.n_orb, precision.element_bytes())
            };
            let fp32 = step(LfdPrecision::Fp32(ComputeMode::Standard));
            let bf16 = step(LfdPrecision::Fp32(ComputeMode::FloatToBf16));
            let tf32 = step(LfdPrecision::Fp32(ComputeMode::FloatToTf32));
            let fp32_1 = {
                let single = MultiStackModel::new(MAX_1550_STACK, 1, fabric);
                let sched = qd_step_schedule(shape, LfdPrecision::Fp32(ComputeMode::Standard));
                single.schedule_seconds(&sched, shape.n_grid, shape.n_orb, 8.0)
            };
            rows.push(vec![
                s.to_string(),
                format!("{:.2}", 500.0 * fp32),
                format!("{:.0}%", 100.0 * fp32_1 / (s as f64 * fp32)),
                format!("{:.2}x", fp32 / bf16),
                format!("{:.2}x", fp32 / tf32),
            ]);
        }
        let table = markdown_table(
            &[
                "Stacks",
                "FP32 500-step time (s)",
                "Parallel efficiency",
                "BF16 speedup",
                "TF32 speedup",
            ],
            &rows,
        );
        println!("Extension — 135-atom scaling over {fname}\n\n{table}");
        write_report(
            &format!("ext_multistack_{}.md", if fabric.name == "Xe-Link" { "xelink" } else { "hdr" }),
            &table,
        )
        .expect("report");
    }
    println!("prediction for the paper's future work: the BF16 end-to-end advantage");
    println!("shrinks as stacks are added — the local GEMMs lose their k-extent and the");
    println!("fixed subspace/communication work grows in relative terms.");
}

//! Ablation: SCF refresh interval.
//!
//! The paper attributes DCMESH's tolerance of low-precision BLAS to the
//! FP64 SCF refresh every 500 QD steps. This ablation sweeps the refresh
//! interval under BF16 and reports (a) the orthonormality drift each
//! refresh absorbs and (b) the final-state deviation from the FP32
//! reference — demonstrating that less frequent refreshes let error
//! accumulate.

use dcmesh::analysis::{DeviationSeries, Metric};
use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::runner::run_simulation;
use dcmesh_bench::{markdown_table, write_report};
use mkl_lite::{with_compute_mode, ComputeMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = {
        let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
        cfg.mesh_points = 10;
        cfg.n_orb = 10;
        cfg.n_occ = 5;
        cfg.total_qd_steps = 480;
        cfg.laser_duration_fs = 0.25;
        cfg.laser_amplitude = 0.35;
        cfg
    };

    let intervals = [60usize, 120, 240, 480];
    let mut rows = Vec::new();
    for &interval in &intervals {
        let mut cfg = base.clone();
        cfg.qd_steps_per_md = interval;
        let reference =
            with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))?;
        let bf16 = with_compute_mode(ComputeMode::FloatToBf16, || run_simulation::<f32>(&cfg))?;
        let max_drift = bf16.scf_drift.iter().cloned().fold(0.0f64, f64::max);
        let ekin_dev =
            DeviationSeries::build(Metric::Ekin, &bf16.records, &reference.records).final_abs();
        let nexc_dev =
            DeviationSeries::build(Metric::Nexc, &bf16.records, &reference.records).final_abs();
        rows.push(vec![
            interval.to_string(),
            format!("{max_drift:.2e}"),
            format!("{ekin_dev:.3e}"),
            format!("{nexc_dev:.3e}"),
        ]);
    }
    let table = markdown_table(
        &[
            "Refresh interval (QD steps)",
            "Max orthonormality drift absorbed",
            "Final |Δekin| vs FP32 (Ha)",
            "Final |Δnexc| vs FP32",
        ],
        &rows,
    );
    println!("Ablation — SCF refresh interval under BF16\n\n{table}");
    println!("the drift each refresh absorbs grows with the interval: the FP64 refresh");
    println!("is what keeps low-precision error bounded (paper §V).");
    write_report("ablate_scf_interval.md", &table).expect("report");
    Ok(())
}

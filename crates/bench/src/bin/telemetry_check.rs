//! `telemetry_check`: produces and validates the telemetry artifacts CI
//! gates on.
//!
//! Default mode runs a short **fault-injected supervised run** at
//! telemetry level `full` — NaNs injected into CGEMM under
//! `FLOAT_TO_BF16` force one rollback + escalation — then exports and
//! schema-checks the three artifacts:
//!
//! * `events.jsonl` — every line parses as JSON with the JSONL schema
//!   fields (`seq`, `ts_ns`, `kind`, `name`, `track`, `tid`, `args`);
//! * `trace.json` — Chrome trace-event JSON (Perfetto-loadable): valid
//!   JSON, balanced `B`/`E` nesting per `(pid, tid)`, monotonic
//!   timestamps per track, the escalation instant on record, BLAS call
//!   spans carrying mode/shape attributes, burst spans, and the
//!   simulated `xe-gpu` kernel timeline as a second process track;
//! * `metrics.prom` — Prometheus text dump with the escalation/rollback
//!   counters, workspace-pool gauges, and the per-callsite ledger
//!   series;
//! * `ledger.json` — the per-(callsite, shape-class, mode)
//!   accuracy/cost ledger (schema-versioned; see
//!   `dcmesh_telemetry::ledger`).
//!
//! `--ledger-gate` additionally demands the ledger *attributed* the
//! injected fault: the CGEMM callsite's FLOAT_TO_BF16 entry must carry
//! the non-finite-output detection and the resulting escalation — the
//! end-to-end check that the suspect-attribution chain (BLAS probe →
//! supervisor decision → ledger row) holds together.
//!
//! `--overhead-gate` instead measures the **disabled path**: per-span
//! cost at `TELEMETRY=off` times the spans-per-QD-step count, as a
//! fraction of the measured QD-step time. CI fails the gate above
//! `--max-overhead-pct` (default 2%).
//!
//! `--advise-gate` runs the offline-advisor loop end to end: a clean
//! supervised run and a fault-injected one (same deck, same
//! `FLOAT_TO_BF16` start mode) each export a `ledger.json`, both run
//! directories are archived into `runs.jsonl`, and
//! `dcmesh_profile::advise` is asked for a plan. The gate demands the
//! advisor's recommendation for the faulted CGEMM callsite is at least
//! as precise (by escalation rank) as the mode the live supervisor
//! actually settled on — the offline plan must never underbid the
//! online escalator. The plan is written to `advice.json`.
//!
//! `--shard-dir DIR` instead validates the artifacts of a completed
//! `dcmesh-shard` run directory: `report.json` parses and reports no
//! failed domains, the coordinator's `trace/events-coord.jsonl` carries
//! the rank-lifecycle instants its report claims (spawns for every
//! rank; heartbeat-miss / dead / respawn instants when restarts
//! happened; degradation instants when ranks were degraded),
//! `trace/metrics-coord.prom` exposes the shard counters, and every
//! surviving rank left a parseable per-rank trace for `profile merge`.
//!
//! Usage: `telemetry_check [--out-dir DIR] [--ledger-gate]
//! [--overhead-gate] [--max-overhead-pct F] [--advise-gate]
//! [--shard-dir DIR]`

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::supervisor::{run_supervised, SupervisorConfig};
use dcmesh_lfd::propagator::{qd_step, QdScratch};
use dcmesh_lfd::state::cosine_potential;
use dcmesh_lfd::{LaserPulse, LfdParams, LfdState, Mesh3};
use dcmesh_telemetry as telemetry;
use mkl_lite::{
    clear_fault_plan, install_fault_plan, verbose, workspace, ComputeMode, FaultKind, FaultPlan,
    FaultSite,
};
use std::collections::HashMap;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;
use telemetry::json::JsonValue;
use telemetry::{export, sink, TelemetryLevel};

/// Host spans opened per QD step: the step span, six sub-phase spans,
/// and nine BLAS call spans. Used to convert per-span disabled cost
/// into per-step overhead.
const SPANS_PER_QD_STEP: u64 = 1 + 6 + 9;

struct Options {
    out_dir: String,
    overhead_gate: bool,
    ledger_gate: bool,
    advise_gate: bool,
    max_overhead_pct: f64,
    shard_dir: Option<String>,
}

fn parse_args() -> Options {
    let mut o = Options {
        out_dir: "telemetry-artifacts".to_string(),
        overhead_gate: false,
        ledger_gate: false,
        advise_gate: false,
        max_overhead_pct: 2.0,
        shard_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out-dir" => {
                o.out_dir = args.next().unwrap_or_else(|| {
                    eprintln!("missing value for --out-dir");
                    std::process::exit(2);
                })
            }
            "--shard-dir" => {
                o.shard_dir = Some(args.next().unwrap_or_else(|| {
                    eprintln!("missing value for --shard-dir");
                    std::process::exit(2);
                }))
            }
            "--overhead-gate" => o.overhead_gate = true,
            "--ledger-gate" => o.ledger_gate = true,
            "--advise-gate" => o.advise_gate = true,
            "--max-overhead-pct" => {
                o.max_overhead_pct =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("missing/invalid value for --max-overhead-pct");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    o
}

fn tiny_deck() -> RunConfig {
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.mesh_points = 10;
    cfg.n_orb = 8;
    cfg.n_occ = 4;
    cfg.total_qd_steps = 60;
    cfg.qd_steps_per_md = 20;
    cfg.laser_duration_fs = 0.03;
    cfg.laser_amplitude = 0.4;
    cfg
}

fn fail(problems: &mut Vec<String>, msg: String) {
    eprintln!("FAIL: {msg}");
    problems.push(msg);
}

/// Validates B/E nesting and per-(pid, tid) timestamp monotonicity over
/// the non-metadata rows of a parsed Chrome trace.
fn check_trace_rows(rows: &[JsonValue], problems: &mut Vec<String>) {
    let mut stacks: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    for row in rows {
        let ph = row.get("ph").and_then(JsonValue::as_str).unwrap_or("?");
        if ph == "M" {
            continue;
        }
        let key = (
            row.get("pid").and_then(JsonValue::as_f64).unwrap_or(-1.0) as u64,
            row.get("tid").and_then(JsonValue::as_f64).unwrap_or(-1.0) as u64,
        );
        let name = row.get("name").and_then(JsonValue::as_str).unwrap_or("?").to_string();
        let ts = row.get("ts").and_then(JsonValue::as_f64).unwrap_or(-1.0);
        if let Some(prev) = last_ts.insert(key, ts) {
            if ts < prev {
                fail(problems, format!("timestamps regressed on {key:?}: {prev} -> {ts}"));
            }
        }
        match ph {
            "B" => stacks.entry(key).or_default().push(name),
            "E" => {
                let top = stacks.get_mut(&key).and_then(Vec::pop);
                if top.as_deref() != Some(name.as_str()) {
                    fail(problems, format!("unbalanced E for {name:?} on {key:?} (top {top:?})"));
                }
            }
            _ => {}
        }
    }
    for (key, stack) in stacks {
        if !stack.is_empty() {
            fail(problems, format!("unclosed spans {stack:?} on {key:?}"));
        }
    }
}

/// The artifact-producing pass: fault-injected supervised run at level
/// `full`, export, schema-check.
fn run_trace_check(out_dir: &Path, ledger_gate: bool) -> Vec<String> {
    let mut problems = Vec::new();
    telemetry::set_level(TelemetryLevel::Full);
    sink::clear();
    telemetry::ledger::clear();

    // A device model makes every logged BLAS call carry a modelled
    // device time, which feeds the simulated kernel track below.
    let _model = xe_gpu::install_default_model();
    verbose::set_recording(true);

    install_fault_plan(FaultPlan::new(7).with_site(
        FaultSite::every(1, FaultKind::Nan)
            .on_routine("CGEMM")
            .in_mode(ComputeMode::FloatToBf16),
    ));
    let cfg = tiny_deck();
    let out = run_supervised::<f32>(&cfg, ComputeMode::FloatToBf16, &SupervisorConfig::default());
    clear_fault_plan();
    verbose::set_recording(false);
    let out = match out {
        Ok(o) => o,
        Err(e) => {
            fail(&mut problems, format!("supervised run failed: {e:?}"));
            return problems;
        }
    };
    if out.escalations.is_empty() {
        fail(&mut problems, "fault-injected run never escalated".into());
    }

    // Replay the modelled per-call device times onto the unitrace-style
    // tracer: each `record` lands on the telemetry device track too.
    let records = verbose::drain();
    let tracer = xe_gpu::Tracer::new();
    for r in &records {
        if let Some(dev) = r.device_seconds {
            tracer.record(r.routine, dev);
        }
    }
    eprintln!(
        "run: {} escalations, {} BLAS records ({} dropped), {:.3} simulated device seconds",
        out.escalations.len(),
        records.len(),
        verbose::dropped_records(),
        tracer.total_seconds()
    );

    workspace::publish_metrics();
    let events = sink::drain();
    if sink::dropped_events() > 0 {
        eprintln!("note: sink dropped {} events (ring full)", sink::dropped_events());
    }

    // --- export the four artifacts ---
    std::fs::create_dir_all(out_dir).expect("create out dir");
    let jsonl = export::jsonl(&events);
    let trace = export::chrome_trace(&events);
    // The ledger series ride in the same scrape body as the counters.
    let prom = format!("{}{}", export::prometheus_dump(), telemetry::ledger::prometheus_text());
    let ledger_text = telemetry::ledger::ledger_json();
    std::fs::write(out_dir.join("events.jsonl"), &jsonl).expect("write events.jsonl");
    std::fs::write(out_dir.join("trace.json"), &trace).expect("write trace.json");
    std::fs::write(out_dir.join("metrics.prom"), &prom).expect("write metrics.prom");
    std::fs::write(out_dir.join("ledger.json"), &ledger_text).expect("write ledger.json");
    eprintln!(
        "[wrote {}/{{events.jsonl, trace.json, metrics.prom, ledger.json}}]",
        out_dir.display()
    );

    // --- schema checks ---
    match export::parse_jsonl(&jsonl) {
        Ok(lines) => {
            // Line 0 is the synthetic `telemetry_meta` instant the
            // exporter prepends for the profile tooling.
            if lines.len() != events.len() + 1 {
                fail(&mut problems, "JSONL line count != event count + meta line".into());
            }
            match lines.first() {
                Some(meta)
                    if meta.get("name").and_then(JsonValue::as_str) == Some("telemetry_meta") =>
                {
                    let args = meta.get("args");
                    for field in ["run_epoch", "rank", "sample_n"] {
                        if args.and_then(|a| a.get(field)).is_none() {
                            fail(&mut problems, format!("telemetry_meta missing {field:?}"));
                        }
                    }
                }
                _ => fail(&mut problems, "events.jsonl does not start with telemetry_meta".into()),
            }
            for (i, l) in lines.iter().enumerate() {
                for field in ["seq", "ts_ns", "kind", "name", "track", "tid", "args"] {
                    if l.get(field).is_none() {
                        fail(&mut problems, format!("events.jsonl line {i} missing {field:?}"));
                        break;
                    }
                }
            }
        }
        Err(e) => fail(&mut problems, format!("events.jsonl does not parse: {e:?}")),
    }

    let doc = match telemetry::json::parse(&trace) {
        Ok(d) => d,
        Err(e) => {
            fail(&mut problems, format!("trace.json is not valid JSON: {e:?}"));
            return problems;
        }
    };
    let rows = match doc.get("traceEvents").and_then(JsonValue::as_array) {
        Some(r) => r,
        None => {
            fail(&mut problems, "trace.json has no traceEvents array".into());
            return problems;
        }
    };
    check_trace_rows(rows, &mut problems);

    let has = |pred: &dyn Fn(&JsonValue) -> bool| rows.iter().any(pred);
    let named = |name: &str, r: &JsonValue| {
        r.get("name").and_then(JsonValue::as_str) == Some(name)
            && r.get("ph").and_then(JsonValue::as_str) != Some("M")
    };
    if !has(&|r| named("escalation", r)) {
        fail(&mut problems, "no escalation event in trace.json".into());
    }
    if !has(&|r| named("burst", r)) {
        fail(&mut problems, "no burst span in trace.json".into());
    }
    if !has(&|r| {
        named("CGEMM", r)
            && r.get("args").map(|a| a.get("mode").is_some() && a.get("m").is_some())
                == Some(true)
    }) {
        fail(&mut problems, "no CGEMM span with mode/shape attributes".into());
    }
    if !has(&|r| {
        r.get("pid").and_then(JsonValue::as_f64) == Some(export::DEVICE_PID as f64)
            && r.get("ph").and_then(JsonValue::as_str) == Some("X")
    }) {
        fail(&mut problems, "no simulated device kernel track in trace.json".into());
    }
    if !prom.contains("supervisor_escalations_total")
        || !prom.contains("mkl_pool_bytes_outstanding")
    {
        fail(&mut problems, "metrics.prom missing expected series".into());
    }
    // The loss-accounting gauges the profile ingester's coverage
    // warnings key off must always be present (zero or not).
    for series in
        ["telemetry_dropped_events", "telemetry_truncated_attrs", "mkl_verbose_dropped_records"]
    {
        if !prom.contains(series) {
            fail(&mut problems, format!("metrics.prom missing {series}"));
        }
    }

    check_ledger(&ledger_text, &prom, ledger_gate, &mut problems);
    problems
}

/// Schema-checks `ledger.json` and, under `--ledger-gate`, demands the
/// injected CGEMM fault was attributed end to end: the BLAS layer's
/// non-finite probe must have flagged the CGEMM callsite, and the
/// supervisor's escalation must have landed on that same row rather
/// than the anonymous `supervisor/burst` fallback.
fn check_ledger(ledger_text: &str, prom: &str, ledger_gate: bool, problems: &mut Vec<String>) {
    let doc = match telemetry::json::parse(ledger_text) {
        Ok(d) => d,
        Err(e) => {
            fail(problems, format!("ledger.json is not valid JSON: {e:?}"));
            return;
        }
    };
    if doc.get("version").and_then(JsonValue::as_f64)
        != Some(telemetry::ledger::LEDGER_SCHEMA_VERSION as f64)
    {
        fail(
            problems,
            format!(
                "ledger.json version != {} : {:?}",
                telemetry::ledger::LEDGER_SCHEMA_VERSION,
                doc.get("version")
            ),
        );
    }
    let entries = match doc.get("entries").and_then(JsonValue::as_array) {
        Some(e) if !e.is_empty() => e,
        _ => {
            fail(problems, "ledger.json has no entries".into());
            return;
        }
    };
    for (i, e) in entries.iter().enumerate() {
        for field in [
            "callsite",
            "shape",
            "mode",
            "calls",
            "wall_s",
            "escalations",
            "rollbacks",
            "nonfinite_outputs",
            "abft_checks",
            "abft_violations",
            "residuals",
        ] {
            if e.get(field).is_none() {
                fail(problems, format!("ledger.json entry {i} missing {field:?}"));
                break;
            }
        }
    }
    if !prom.contains("dcmesh_ledger_calls_total") {
        fail(problems, "metrics.prom missing dcmesh_ledger_calls_total".into());
    }
    if !ledger_gate {
        return;
    }
    let field_str =
        |e: &JsonValue, f: &str| e.get(f).and_then(JsonValue::as_str).unwrap_or("").to_string();
    let field_f64 = |e: &JsonValue, f: &str| e.get(f).and_then(JsonValue::as_f64).unwrap_or(0.0);
    let cgemm_bf16 = entries.iter().find(|e| {
        field_str(e, "callsite").contains("cgemm") && field_str(e, "mode") == "FLOAT_TO_BF16"
    });
    match cgemm_bf16 {
        None => fail(problems, "ledger-gate: no cgemm FLOAT_TO_BF16 entry".into()),
        Some(e) => {
            if field_f64(e, "calls") < 1.0 {
                fail(problems, "ledger-gate: cgemm FLOAT_TO_BF16 entry has no calls".into());
            }
        }
    }
    let attributed = entries.iter().any(|e| {
        field_str(e, "callsite").contains("cgemm")
            && field_f64(e, "nonfinite_outputs") >= 1.0
            && field_f64(e, "escalations") >= 1.0
    });
    if !attributed {
        fail(
            problems,
            "ledger-gate: injected CGEMM fault was not attributed (no cgemm entry with \
             nonfinite_outputs >= 1 and escalations >= 1)"
                .into(),
        );
    }
}

/// Runs one supervised pass of the tiny deck at level `full` and leaves
/// its precision ledger as `<dir>/ledger.json`, shaped like a run
/// directory `dcmesh_profile::archive::collect_run` can fold. Returns
/// the mode the supervisor settled on.
fn supervised_ledger_run(
    dir: &Path,
    faulted: bool,
    problems: &mut Vec<String>,
) -> Option<ComputeMode> {
    telemetry::set_level(TelemetryLevel::Full);
    sink::clear();
    telemetry::ledger::clear();
    let _model = xe_gpu::install_default_model();
    if faulted {
        install_fault_plan(FaultPlan::new(7).with_site(
            FaultSite::every(1, FaultKind::Nan)
                .on_routine("CGEMM")
                .in_mode(ComputeMode::FloatToBf16),
        ));
    }
    let cfg = tiny_deck();
    let out = run_supervised::<f32>(&cfg, ComputeMode::FloatToBf16, &SupervisorConfig::default());
    clear_fault_plan();
    let out = match out {
        Ok(o) => o,
        Err(e) => {
            fail(problems, format!("advise-gate: supervised run in {} failed: {e:?}", dir.display()));
            return None;
        }
    };
    std::fs::create_dir_all(dir).expect("create run dir");
    std::fs::write(dir.join("ledger.json"), telemetry::ledger::ledger_json())
        .expect("write ledger.json");
    eprintln!(
        "advise-gate: {} run settled on {:?} ({} escalation(s))",
        if faulted { "faulted" } else { "clean" },
        out.final_mode,
        out.escalations.len()
    );
    Some(out.final_mode)
}

/// The offline-advisor gate: clean + fault-injected runs of the same
/// deck are archived, advised over, and the recommendation for the
/// faulted CGEMM callsite must be at least as precise as the mode the
/// live supervisor settled on.
fn run_advise_gate(out_dir: &Path) -> Vec<String> {
    use dcmesh_profile::{advise, archive};
    let mut problems = Vec::new();

    let clean_dir = out_dir.join("clean");
    let fault_dir = out_dir.join("fault");
    let Some(_clean_mode) = supervised_ledger_run(&clean_dir, false, &mut problems) else {
        return problems;
    };
    let Some(settled) = supervised_ledger_run(&fault_dir, true, &mut problems) else {
        return problems;
    };
    if settled == ComputeMode::FloatToBf16 {
        fail(&mut problems, "advise-gate: faulted run never escalated past FLOAT_TO_BF16".into());
    }

    let runs_path = out_dir.join("archive").join("runs.jsonl");
    for dir in [&clean_dir, &fault_dir] {
        match archive::collect_run(dir, Some("FLOAT_TO_BF16+supervised")) {
            Ok(rec) => match archive::append(&runs_path, &rec) {
                Ok(_) => eprintln!(
                    "advise-gate: archived {} ({} ledger rows)",
                    rec.run_id,
                    rec.entries.len()
                ),
                Err(e) => fail(&mut problems, format!("advise-gate: append: {e}")),
            },
            Err(e) => {
                fail(&mut problems, format!("advise-gate: collect {}: {e}", dir.display()))
            }
        }
    }
    let (records, warnings) = match archive::read_archive(&runs_path) {
        Ok(rw) => rw,
        Err(e) => {
            fail(&mut problems, format!("advise-gate: read archive: {e}"));
            return problems;
        }
    };
    for w in warnings {
        fail(&mut problems, format!("advise-gate: archive warning: {w}"));
    }
    if records.len() != 2 {
        fail(&mut problems, format!("advise-gate: expected 2 archived runs, got {}", records.len()));
    }

    let plan = advise::advise(&records);
    std::fs::write(out_dir.join("advice.json"), advise::advice_json(&plan))
        .expect("write advice.json");
    eprint!("{}", advise::render_advice(&plan));
    let cgemm: Vec<_> = plan.plan.iter().filter(|c| c.callsite.contains("cgemm")).collect();
    if cgemm.is_empty() {
        fail(&mut problems, "advise-gate: no cgemm callsite in the advice plan".into());
    }
    for c in cgemm {
        if c.recommended_mode.escalation_rank() < settled.escalation_rank() {
            fail(
                &mut problems,
                format!(
                    "advise-gate: {} {} recommends {:?} (rank {}), less precise than the \
                     supervisor's settled {:?} (rank {})",
                    c.callsite,
                    c.shape,
                    c.recommended_mode,
                    c.recommended_mode.escalation_rank(),
                    settled,
                    settled.escalation_rank()
                ),
            );
        }
    }
    problems
}

/// The disabled-path gate: measures ns/span at `off` and the QD-step
/// time, then bounds instrumentation overhead per step.
fn run_overhead_gate(max_pct: f64) -> Vec<String> {
    let mut problems = Vec::new();
    telemetry::set_level(TelemetryLevel::Off);

    // Per-span disabled cost: construction + drop of an inert guard.
    let reps = 4_000_000u32;
    let t0 = Instant::now();
    for i in 0..reps {
        let g = telemetry::span("overhead_probe");
        black_box(&g);
        drop(g);
        black_box(i);
    }
    let ns_per_span = t0.elapsed().as_nanos() as f64 / reps as f64;

    // QD-step time on the benchmark deck (`benches/qd_step.rs` params).
    let p = LfdParams {
        mesh: Mesh3::cubic(12, 0.6),
        n_orb: 16,
        n_occ: 8,
        dt: 0.02,
        vnl_strength: 0.2,
        taylor_order: 4,
        laser: LaserPulse { amplitude: 0.3, omega: 0.3, duration: 1e6, phase: 0.0 },
        induced_coupling: 0.0,
    };
    let mut st = LfdState::<f32>::initialize(&p, cosine_potential(&p.mesh, 0.2));
    let mut scratch = QdScratch::new(&p);
    for _ in 0..3 {
        black_box(qd_step(&p, &mut st, &mut scratch));
    }
    let steps = 20u32;
    let t0 = Instant::now();
    for _ in 0..steps {
        black_box(qd_step(&p, &mut st, &mut scratch).ekin);
    }
    let ns_per_step = t0.elapsed().as_nanos() as f64 / steps as f64;

    let overhead_ns = ns_per_span * SPANS_PER_QD_STEP as f64;
    let pct = 100.0 * overhead_ns / ns_per_step;
    eprintln!(
        "disabled path: {ns_per_span:.2} ns/span x {SPANS_PER_QD_STEP} spans/step = \
         {overhead_ns:.0} ns vs {ns_per_step:.0} ns/qd_step = {pct:.4}% (limit {max_pct}%)"
    );
    if !pct.is_finite() || pct > max_pct {
        fail(&mut problems, format!("disabled-path overhead {pct:.4}% exceeds {max_pct}%"));
    }
    problems
}

/// Validates a completed `dcmesh-shard` run directory: the report, the
/// coordinator's lifecycle events and counters, and the per-rank traces
/// the multi-rank `profile merge` consumes.
fn run_shard_check(dir: &Path) -> Vec<String> {
    let mut problems = Vec::new();

    let report = match std::fs::read_to_string(dcmesh::shard::report_path(dir)) {
        Ok(text) => match dcmesh::ShardReport::parse(&text) {
            Ok(r) => r,
            Err(e) => {
                fail(&mut problems, format!("report.json: {e}"));
                return problems;
            }
        },
        Err(e) => {
            fail(&mut problems, format!("reading report.json: {e}"));
            return problems;
        }
    };
    if report.domains.is_empty() {
        fail(&mut problems, "report.json lists no domains".into());
    }
    let failed = report.failed_domains();
    if !failed.is_empty() {
        fail(&mut problems, format!("report.json records failed domain(s): {failed:?}"));
    }
    eprintln!(
        "shard report: {} domain(s), {} rank(s), {} restart(s), {} heartbeat miss(es), \
         degraded {:?}",
        report.domains.len(),
        report.ranks.len(),
        report.restarts,
        report.heartbeat_misses,
        report.degraded_ranks
    );

    // Coordinator lifecycle events must back up the report's story.
    let coord = dir.join("trace").join("events-coord.jsonl");
    match std::fs::read_to_string(&coord) {
        Ok(text) => match export::parse_jsonl(&text) {
            Ok(lines) => {
                let rank_of = |l: &JsonValue| {
                    l.get("args").and_then(|a| a.get("rank")).and_then(JsonValue::as_f64)
                };
                let count = |name: &str| {
                    lines
                        .iter()
                        .filter(|l| l.get("name").and_then(JsonValue::as_str) == Some(name))
                        .count()
                };
                for r in &report.ranks {
                    let spawned = lines.iter().any(|l| {
                        l.get("name").and_then(JsonValue::as_str) == Some("rank_spawn")
                            && rank_of(l) == Some(r.rank as f64)
                    });
                    if !spawned {
                        fail(&mut problems, format!("no rank_spawn instant for rank {}", r.rank));
                    }
                }
                if report.restarts > 0 {
                    for name in ["heartbeat_miss", "rank_dead", "rank_respawn"] {
                        if count(name) == 0 {
                            fail(
                                &mut problems,
                                format!("report claims restarts but no {name} instants"),
                            );
                        }
                    }
                }
                if !report.degraded_ranks.is_empty() && count("rank_degraded") == 0 {
                    fail(&mut problems, "degraded ranks but no rank_degraded instants".into());
                }
            }
            Err(e) => fail(&mut problems, format!("events-coord.jsonl does not parse: {e:?}")),
        },
        Err(e) => fail(&mut problems, format!("reading {}: {e}", coord.display())),
    }

    // Coordinator counters.
    match std::fs::read_to_string(dir.join("trace").join("metrics-coord.prom")) {
        Ok(prom) => {
            for series in [
                "shard_heartbeat_misses_total",
                "shard_rank_restarts_total",
                "shard_ranks_degraded_total",
            ] {
                if !prom.contains(series) {
                    fail(&mut problems, format!("metrics-coord.prom missing {series}"));
                }
            }
        }
        Err(e) => fail(&mut problems, format!("reading metrics-coord.prom: {e}")),
    }

    // Every surviving rank's trace must exist, parse, and attribute
    // itself to the right rank (that's what keys `profile merge`).
    for r in &report.ranks {
        if r.degraded {
            continue;
        }
        let path = dcmesh::shard::rank_events_path(dir, r.rank);
        match std::fs::read_to_string(&path) {
            Ok(text) => match export::parse_jsonl(&text) {
                Ok(lines) => {
                    let meta_rank = lines
                        .first()
                        .filter(|l| {
                            l.get("name").and_then(JsonValue::as_str) == Some("telemetry_meta")
                        })
                        .and_then(|l| l.get("args").and_then(|a| a.get("rank")))
                        .and_then(JsonValue::as_f64);
                    if meta_rank != Some(r.rank as f64) {
                        fail(
                            &mut problems,
                            format!(
                                "{} telemetry_meta rank is {meta_rank:?}, expected {}",
                                path.display(),
                                r.rank
                            ),
                        );
                    }
                }
                Err(e) => {
                    fail(&mut problems, format!("{} does not parse: {e:?}", path.display()))
                }
            },
            Err(e) => fail(&mut problems, format!("reading {}: {e}", path.display())),
        }
    }
    problems
}

fn main() {
    let o = parse_args();
    let problems = if let Some(dir) = &o.shard_dir {
        run_shard_check(Path::new(dir))
    } else if o.overhead_gate {
        run_overhead_gate(o.max_overhead_pct)
    } else if o.advise_gate {
        run_advise_gate(Path::new(&o.out_dir))
    } else {
        run_trace_check(Path::new(&o.out_dir), o.ledger_gate)
    };
    if !problems.is_empty() {
        eprintln!("telemetry_check: {} problem(s)", problems.len());
        std::process::exit(1);
    }
    eprintln!("telemetry_check: OK");
}

//! Table V: system sizes studied (atoms, mesh grid, N_orb), derived from
//! the actual supercell builder rather than hard-coded.

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh_bench::{markdown_table, write_report};
use dcmesh_qxmd::pto_supercell;

fn main() {
    let rows: Vec<Vec<String>> = [SystemPreset::Pto40, SystemPreset::Pto135]
        .iter()
        .map(|&preset| {
            let cfg = RunConfig::preset(preset);
            let atoms = pto_supercell(cfg.supercell).len();
            vec![
                atoms.to_string(),
                format!("{0}x{0}x{0}", cfg.mesh_points),
                cfg.n_orb.to_string(),
            ]
        })
        .collect();
    let table = markdown_table(&["Number of Atoms", "Mesh Grid Size", "N_orb"], &rows);
    println!("Table V — system sizes studied\n");
    println!("{table}");
    // The paper's caption: the 135-atom system is the largest fitting in
    // the 64 GB of one stack.
    let psi_bytes = 96u64.pow(3) * 1024 * 8;
    println!(
        "135-atom state: {:.2} GB per Ψ copy ({} copies fit in one 64 GB stack)",
        psi_bytes as f64 / 1e9,
        64_000_000_000 / psi_bytes
    );
    write_report("table5.md", &table).expect("report");
}

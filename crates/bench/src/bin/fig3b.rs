//! Figure 3b: speedup of the `remap_occ` BLAS call vs FP32 for the
//! 40-atom system at N_orb ∈ {256, 1024, 2048, 4096}, per compute mode
//! (the MKL_VERBOSE sweep of artifact A3, priced by the device model).

use dcmesh::perf::{figure3b, FIG3B_ORBITALS};
use dcmesh_bench::{markdown_table, write_report};
use mkl_lite::ComputeMode;

fn main() {
    let headers: Vec<String> = std::iter::once("Compute Mode".to_string())
        .chain(FIG3B_ORBITALS.iter().map(|n| format!("N_orb={n}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    for mode in ComputeMode::ALTERNATIVE {
        let points = figure3b(mode);
        let mut row = vec![mode.label().to_string()];
        row.extend(points.iter().map(|p| format!("{:.2}x", p.speedup)));
        rows.push(row);
    }
    let table = markdown_table(&header_refs, &rows);
    println!("Figure 3b — BLAS speedup vs FP32, 40-atom remap_occ sweep (modelled)\n");
    println!("{table}");

    let bf16 = figure3b(ComputeMode::FloatToBf16);
    println!("GEMM shapes (Table VII): ");
    for p in &bf16 {
        println!("  N_orb={:<5} m={} n={} k={}", p.n_orb, p.mnk.0, p.mnk.1, p.mnk.2);
    }
    println!(
        "\npaper shape check: smallest N_orb gives the least improvement, largest the\n\
         most; BF16 peaks at ~3.9x (paper: 3.91x), far below the 16x theoretical peak\n\
         because m = 128 keeps the call bandwidth-bound."
    );
    write_report("fig3b.md", &table).expect("report");
}

//! Table VI: maximum observed speedup of BLAS routines vs the peak
//! theoretical speedup, over the 40-atom orbital sweep (artifact A3).

use dcmesh::perf::table6;
use dcmesh_bench::{markdown_table, write_report};

fn main() {
    let rows: Vec<Vec<String>> = table6()
        .iter()
        .map(|r| {
            vec![
                r.mode.label().to_string(),
                format!("{:.2}x", r.max_observed),
                format!("{:.2}x", r.theoretical),
            ]
        })
        .collect();
    let table = markdown_table(
        &["Compute Mode", "Max Observed Speedup", "Peak Theoretical Speedup"],
        &rows,
    );
    println!("Table VI — max observed vs theoretical BLAS speedup (modelled)\n");
    println!("{table}");
    println!("paper reference point: BF16 max observed 3.91x vs 16x theoretical;");
    println!("the gap comes from HBM bandwidth (m = 128 keeps the GEMM panel-shaped)");
    println!("and sustained-power throttling of the XMX arrays — both explicit terms");
    println!("in the xe-gpu device model.");
    write_report("table6.md", &table).expect("report");
}

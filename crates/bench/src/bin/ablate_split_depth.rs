//! Ablation: BF16 split depth 1/2/3 — the accuracy-versus-speed
//! trade-off behind the FLOAT_TO_BF16{,X2,X3} family.
//!
//! For one GEMM shape this reports (a) the measured numerical error of
//! each depth against an f64 reference — emergent from the real split
//! arithmetic — and (b) the modelled device time at paper scale.

use dcmesh_bench::{markdown_table, write_report};
use mkl_lite::device::{Domain, GemmDesc};
use mkl_lite::gemm::kernel::matmul_reference;
use mkl_lite::gemm::lowp::matmul_acc_lowp;
use mkl_lite::ComputeMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xe_gpu::{XeStackModel, MAX_1550_STACK};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let (m, n, k) = (48usize, 48, 1024);
    // Positive inputs: the no-cancellation regime of the paper's SV-B
    // error model, so relative errors reflect the formats, not the data.
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(0.1f32..1.0)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(0.1f32..1.0)).collect();
    let a64: Vec<f64> = a.iter().map(|&x| x as f64).collect();
    let b64: Vec<f64> = b.iter().map(|&x| x as f64).collect();
    let exact = matmul_reference(&a64, &b64, m, n, k);

    let model = XeStackModel::new(MAX_1550_STACK);
    let paper_shape = GemmDesc {
        domain: Domain::Complex32,
        m: 128,
        n: 3968,
        k: 262_144,
        mode: ComputeMode::Standard,
    };
    let fp32_time = model.gemm_seconds(&paper_shape);

    let modes = [
        ComputeMode::Standard,
        ComputeMode::FloatToBf16,
        ComputeMode::FloatToBf16x2,
        ComputeMode::FloatToBf16x3,
    ];
    let rows: Vec<Vec<String>> = modes
        .iter()
        .map(|&mode| {
            let mut acc = vec![0.0f32; m * n];
            matmul_acc_lowp(mode, &a, &b, &mut acc, m, n, k);
            let max_rel = acc
                .iter()
                .zip(&exact)
                .map(|(&x, &y)| ((x as f64 - y) / (y.abs() + 1e-30)).abs())
                .fold(0.0, f64::max);
            let t = model.gemm_seconds(&GemmDesc { mode, ..paper_shape });
            vec![
                mode.label().to_string(),
                format!("{:.2e}", max_rel),
                format!("{}", mode.component_products()),
                format!("{:.2}x", fp32_time / t),
            ]
        })
        .collect();

    let table = markdown_table(
        &["Mode", "Max rel. error (measured)", "Component products", "Modelled speedup"],
        &rows,
    );
    println!("Ablation — BF16 split depth: accuracy vs speed\n\n{table}");
    println!("each extra split term buys ~8 mantissa bits (error drops ~256x) and");
    println!("costs 2-3 more systolic products (speedup shrinks accordingly).");
    write_report("ablate_split_depth.md", &table).expect("report");
}

//! Figure 3a: time to completion of 500 QD steps for the 40- and
//! 135-atom systems at each precision, on the Xe-HPC device model.
//!
//! Prints the same bars the paper plots (log scale), plus the paper's
//! published reference values for the 135-atom system so the agreement is
//! visible in place.

use dcmesh::perf::figure3a;
use dcmesh_bench::{markdown_table, write_report};
use dcmesh_lfd::schedule::SystemShape;

fn main() {
    let mut report = String::new();
    for (name, shape, paper_ref) in [
        ("40 atoms", SystemShape::pto40(), None),
        (
            "135 atoms",
            SystemShape::pto135(),
            // §V-C: FP64 > 2800 s, FP32 1472 s, BF16 972 s.
            Some([("FP64", 2800.0), ("FP32", 1472.0), ("BF16", 972.0)]),
        ),
    ] {
        let points = figure3a(shape);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                let paper = paper_ref
                    .and_then(|r| r.iter().find(|(l, _)| *l == p.label).map(|(_, v)| *v));
                vec![
                    p.label.to_string(),
                    format!("{:.1}", p.seconds_500_steps),
                    paper.map_or("—".into(), |v| format!("{v:.0}")),
                ]
            })
            .collect();
        let table = markdown_table(&["Precision", "Modelled 500-step time (s)", "Paper (s)"], &rows);
        println!("Figure 3a — {name}\n\n{table}");
        let fp32 = points.iter().find(|p| p.label == "FP32").expect("FP32 bar");
        let bf16 = points.iter().find(|p| p.label == "BF16").expect("BF16 bar");
        println!(
            "end-to-end BF16 speedup vs FP32: {:.2}x\n",
            fp32.seconds_500_steps / bf16.seconds_500_steps
        );
        report.push_str(&format!("## {name}\n\n{table}\n"));
    }
    println!("paper shape check: at 40 atoms the compute modes barely matter (only");
    println!("FP64 vs FP32 moves); at 135 atoms the ordering is BF16 < TF32 < BF16x2");
    println!("< BF16x3 < Complex_3m < FP32 < FP64.");
    write_report("fig3a.md", &report).expect("report");
}

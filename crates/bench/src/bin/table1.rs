//! Table I: theoretical peak throughput for a single Max 1550 stack.

use dcmesh_bench::{markdown_table, write_report};
use xe_gpu::{Engine, MAX_1550_STACK};

fn main() {
    let d = MAX_1550_STACK;
    let rows: Vec<Vec<String>> = ["FP64", "FP32", "TF32", "BF16", "FP16", "INT8"]
        .iter()
        .map(|&name| {
            let (peak, engine) = d.table1_row(name).expect("known precision");
            let unit = if name == "INT8" { "TOP/s" } else { "TFLOP/s" };
            vec![
                name.to_string(),
                format!("{:.0} {unit}", peak / 1e12),
                match engine {
                    Engine::Vector => "Vector".into(),
                    Engine::Matrix => "Matrix".into(),
                },
            ]
        })
        .collect();
    let table = markdown_table(&["Precision", "Theoretical Peak", "Engines"], &rows);
    println!("Table I — theoretical peak throughput for a single stack\n");
    println!("{table}");
    write_report("table1.md", &table).expect("report");
}

//! Table IV: exponent and mantissa bits for each precision format.

use dcmesh_bench::{markdown_table, write_report};
use dcmesh_numerics::FORMATS;

fn main() {
    let rows: Vec<Vec<String>> = FORMATS
        .iter()
        .map(|f| {
            vec![
                f.name.to_string(),
                f.exponent_bits.to_string(),
                f.mantissa_bits.to_string(),
            ]
        })
        .collect();
    let table = markdown_table(&["Precision", "Exponent Bits", "Mantissa Bits"], &rows);
    println!("Table IV — precision formats studied\n");
    println!("{table}");
    println!("unit roundoff: ");
    for f in FORMATS {
        println!("  {:<5} {:.3e}", f.name, f.unit_roundoff());
    }
    write_report("table4.md", &table).expect("report");
}

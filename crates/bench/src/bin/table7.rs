//! Table VII: m, n, k of the `remap_occ` GEMM at increasing orbital
//! counts (40-atom system), extracted from a live `MKL_VERBOSE`-style
//! call log rather than recomputed — the same route the artifact uses.

use dcmesh_bench::{markdown_table, write_report};
use dcmesh_lfd::remap::remap_occ;
use dcmesh_lfd::state::cosine_potential;
use dcmesh_lfd::{LaserPulse, LfdParams, LfdState, Mesh3};
use mkl_lite::verbose;

fn main() {
    // Executing the remap numerically at mesh 64^3 x 4096 orbitals is a
    // GPU-scale job; the *shapes* are what Table VII reports, and they are
    // produced by the very same code path at reduced mesh. We log the
    // live call, then rescale k to the paper's 64^3 grid (k = N_grid
    // exactly, verified below).
    let mesh_small = 16usize;
    let mut rows = Vec::new();
    for &n_orb in &[256usize, 1024, 2048, 4096] {
        // Scale the orbital count with the mesh so n_orb <= n_grid.
        let scale = 16; // paper orbitals per small-run orbital
        let n_orb_small = n_orb / scale;
        let n_occ_small = 128 / scale;
        let params = LfdParams {
            mesh: Mesh3::cubic(mesh_small, 0.6),
            n_orb: n_orb_small,
            n_occ: n_occ_small,
            dt: 0.02,
            vnl_strength: 0.1,
            taylor_order: 4,
            laser: LaserPulse::off(),
            induced_coupling: 0.0,
        };
        let state = LfdState::<f32>::initialize(&params, cosine_potential(&params.mesh, 0.1));
        verbose::clear();
        verbose::set_recording(true);
        let _ = remap_occ(&params, &state);
        verbose::set_recording(false);
        let calls = verbose::drain();
        let projection = &calls[0]; // first call is the Table VII GEMM
        assert_eq!(projection.routine, "CGEMM");
        assert_eq!(projection.k, params.mesh.len(), "k must equal N_grid");
        assert_eq!(projection.m, n_occ_small);
        assert_eq!(projection.n, n_orb_small - n_occ_small);

        // Rescale the logged shape to the paper's published size.
        let n_grid_paper = 64usize.pow(3);
        rows.push(vec![
            "40".to_string(),
            n_orb.to_string(),
            (projection.m * scale).to_string(),
            (projection.n * scale).to_string(),
            n_grid_paper.to_string(),
        ]);
    }
    let table = markdown_table(&["Number of Atoms", "N_orb", "m", "n", "k"], &rows);
    println!("Table VII — remap_occ GEMM dimensions vs orbital count\n");
    println!("{table}");
    println!("note: the paper lists n = 3978 for N_orb = 4096 (a few orbitals dropped");
    println!("in the authors' run); the structural value is N_orb - N_occ = 3968.");
    write_report("table7.md", &table).expect("report");
}

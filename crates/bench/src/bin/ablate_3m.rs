//! Ablation: 3M vs conventional (4M) complex multiplication.
//!
//! Measures the actual numerical difference between the two algorithms on
//! real CGEMMs (same inputs, different rounding paths) and the modelled
//! 4/3 compute reduction at paper scale — including where bandwidth eats
//! the benefit.

use dcmesh_bench::{markdown_table, write_report};
use dcmesh_numerics::{c32, C32};
use mkl_lite::device::{Domain, GemmDesc};
use mkl_lite::{cgemm, with_compute_mode, ComputeMode, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xe_gpu::{XeStackModel, MAX_1550_STACK};

fn main() {
    // (a) Numerical comparison on a real CGEMM.
    let mut rng = StdRng::seed_from_u64(11);
    let (m, n, k) = (40usize, 40, 2048);
    let a: Vec<C32> =
        (0..m * k).map(|_| c32(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect();
    let b: Vec<C32> =
        (0..k * n).map(|_| c32(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect();
    let run = |mode| {
        let mut c = vec![C32::zero(); m * n];
        with_compute_mode(mode, || {
            cgemm(Op::None, Op::None, m, n, k, C32::one(), &a, k, &b, n, C32::zero(), &mut c, n);
        });
        c
    };
    let c4 = run(ComputeMode::Standard);
    let c3 = run(ComputeMode::Complex3m);
    let mut max_diff = 0.0f64;
    let mut identical = true;
    for (x, y) in c4.iter().zip(&c3) {
        let d = (x.to_c64() - y.to_c64()).abs();
        max_diff = max_diff.max(d);
        identical &= x == y;
    }
    let scale = c4.iter().map(|z| z.to_c64().abs()).fold(0.0f64, f64::max);

    // (b) Modelled time at the paper's shapes.
    let model = XeStackModel::new(MAX_1550_STACK);
    let shapes = [
        ("remap sweep (m=128, bandwidth-bound)", (128usize, 3968usize, 262_144usize)),
        ("nlp project 135-atom (compute-bound)", (1024, 1024, 884_736)),
    ];
    let mut rows = Vec::new();
    for (name, (m, n, k)) in shapes {
        let t4 = model.gemm_seconds(&GemmDesc {
            domain: Domain::Complex32,
            m,
            n,
            k,
            mode: ComputeMode::Standard,
        });
        let t3 = model.gemm_seconds(&GemmDesc {
            domain: Domain::Complex32,
            m,
            n,
            k,
            mode: ComputeMode::Complex3m,
        });
        rows.push(vec![name.to_string(), format!("{:.2} ms", t4 * 1e3), format!("{:.2} ms", t3 * 1e3), format!("{:.2}x", t4 / t3)]);
    }
    let table = markdown_table(&["GEMM", "4M time", "3M time", "speedup"], &rows);
    println!("Ablation — 3M vs 4M complex multiplication\n");
    println!("numerical: max |3M − 4M| = {max_diff:.3e} (output scale {scale:.2});");
    println!("bit-identical: {identical} (must be false — different rounding paths)\n");
    println!("{table}");
    println!("\n3M trades one multiplication for extra additions: ≤ 4/3 speedup where");
    println!("compute-bound, less where bandwidth dominates — and identical-accuracy-");
    println!("class results with different cancellation behaviour (paper §III-B).");
    assert!(!identical, "3M produced bit-identical output; path not exercised");
    write_report("ablate_3m.md", &table).expect("report");
}

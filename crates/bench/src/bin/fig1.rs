//! Figure 1: accuracy of three output metrics (nexc, javg, ekin) as the
//! deviation from FP32 over simulation time, for all five alternative
//! compute modes.
//!
//! This executes the real dynamics per mode — the deviations are emergent
//! numerics, not a model. By default a laptop-scale deck is used (the
//! paper's full 135-atom run is a 2-day GPU job per mode); pass
//! `--scale paper` to use the published sizes if you have the hardware
//! budget, or `--steps N` to lengthen the default run.
//!
//! Output: one CSV per metric under `target/reports/` with a column per
//! mode, ready for plotting — the same series the paper's Figure 1 plots.

use dcmesh::analysis::{DeviationSeries, Metric};
use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::runner::run_simulation;
use dcmesh_bench::write_report;
use mkl_lite::{with_compute_mode, ComputeMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale").unwrap_or_else(|| "small".into());
    let preset = match scale.as_str() {
        "paper" => SystemPreset::Pto135,
        "small" => SystemPreset::Pto135Small,
        other => panic!("unknown --scale {other:?} (use small|paper)"),
    };
    let mut cfg = RunConfig::preset(preset);
    if let Some(steps) = arg_value(&args, "--steps") {
        cfg.total_qd_steps = steps.parse().expect("--steps N");
    }
    if scale == "small" {
        // Keep the default harness CI-sized.
        cfg.total_qd_steps = cfg.total_qd_steps.min(600);
        cfg.record_every = 5;
    }

    eprintln!("Figure 1: {} / {} QD steps per mode", cfg.label, cfg.total_qd_steps);
    eprintln!("reference run: FP32");
    let reference = with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))?;

    let mut series: Vec<(ComputeMode, [DeviationSeries; 3])> = Vec::new();
    for mode in ComputeMode::ALTERNATIVE {
        eprintln!("mode run: {}", mode.label());
        let run = with_compute_mode(mode, || run_simulation::<f32>(&cfg))?;
        let s = Metric::FIGURE1
            .map(|m| DeviationSeries::build(m, &run.records, &reference.records));
        series.push((mode, s));
    }

    for (idx, metric) in Metric::FIGURE1.iter().enumerate() {
        let mut csv = String::from("time_fs");
        for (mode, _) in &series {
            csv.push_str(&format!(",{}", mode.label()));
        }
        csv.push('\n');
        let n = series[0].1[idx].points.len();
        for p in 0..n {
            csv.push_str(&format!("{:.6}", series[0].1[idx].points[p].time_fs));
            for (_, s) in &series {
                csv.push_str(&format!(",{:.8e}", s[idx].points[p].abs_deviation));
            }
            csv.push('\n');
        }
        write_report(&format!("fig1_{}.csv", metric.name()), &csv).expect("report");
    }

    println!("\nFigure 1 summary — max |deviation from FP32|:");
    println!("{:<12} {:>13} {:>13} {:>13}", "mode", "nexc", "javg", "ekin");
    for (mode, s) in &series {
        println!(
            "{:<12} {:>13.4e} {:>13.4e} {:>13.4e}",
            mode.label(),
            s[0].max_abs(),
            s[1].max_abs(),
            s[2].max_abs()
        );
    }
    println!("\npaper shape check: BF16 family worst and growing over time; TF32 between");
    println!("BF16 and BF16x2; BF16x3 and Complex_3m near the FP32 trajectory.");
    println!("note: at this reduced scale, trajectory divergence (chaos) eventually");
    println!("amplifies every mode's seed to a similar saturation level; orderings are");
    println!("cleanest over the first few hundred steps. The paper's 1024-orbital");
    println!("system self-averages far more strongly.");
    Ok(())
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

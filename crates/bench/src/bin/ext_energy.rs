//! Extension experiment: energy-to-solution per compute mode.
//!
//! The accelerated modes light up the power-hungry XMX arrays but finish
//! sooner; this harness integrates the power model over the 135-atom
//! 500-QD-step schedule to answer whether BF16 saves energy as well as
//! time.

use dcmesh_bench::{markdown_table, write_report};
use dcmesh_lfd::schedule::{price_qd_step, qd_step_schedule, LfdPrecision, SystemShape};
use xe_gpu::{XeStackModel, MAX_1550_STACK, MAX_1550_STACK_POWER};

fn main() {
    let model = XeStackModel::new(MAX_1550_STACK);
    let pm = MAX_1550_STACK_POWER;
    let shape = SystemShape::pto135();

    let fp32 = {
        let sched = qd_step_schedule(shape, LfdPrecision::Fp32(mkl_lite::ComputeMode::Standard));
        500.0 * pm.schedule_energy_joules(&model, &sched)
    };

    let mut rows = Vec::new();
    for p in LfdPrecision::figure3a_set() {
        let sched = qd_step_schedule(shape, p);
        let time = 500.0 * price_qd_step(&model, &sched, None);
        let energy = 500.0 * pm.schedule_energy_joules(&model, &sched);
        rows.push(vec![
            p.label().to_string(),
            format!("{:.0}", time),
            format!("{:.2}", energy / 1e6),
            format!("{:.0}", energy / time),
            format!("{:.2}x", fp32 / energy),
        ]);
    }
    let table = markdown_table(
        &["Precision", "Time (s)", "Energy (MJ)", "Mean power (W)", "Energy saving vs FP32"],
        &rows,
    );
    println!("Extension — energy-to-solution, 135-atom system, 500 QD steps\n\n{table}");
    println!("BF16 draws more power per second (XMX at the cap) but finishes enough");
    println!("sooner that energy-to-solution still drops — the same trade LLM training");
    println!("rides (paper §I-II).");
    write_report("ext_energy.md", &table).expect("report");
}

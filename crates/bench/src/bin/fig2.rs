//! Figure 2: log₁₀ of the current-density deviation from FP32 over
//! simulation time, per compute mode. Same runs as Figure 1, different
//! projection.

use dcmesh::analysis::{DeviationSeries, Metric};
use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::runner::run_simulation;
use dcmesh_bench::write_report;
use mkl_lite::{with_compute_mode, ComputeMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = RunConfig::preset(SystemPreset::Pto135Small);
    cfg.total_qd_steps = 600;
    cfg.record_every = 5;

    eprintln!("Figure 2: reference (FP32) + 5 mode runs, {} QD steps", cfg.total_qd_steps);
    let reference = with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))?;

    let mut csv = String::from("time_fs");
    let mut columns: Vec<(ComputeMode, Vec<(f64, f64)>)> = Vec::new();
    for mode in ComputeMode::ALTERNATIVE {
        eprintln!("mode run: {}", mode.label());
        let run = with_compute_mode(mode, || run_simulation::<f32>(&cfg))?;
        let series = DeviationSeries::build(Metric::Javg, &run.records, &reference.records);
        csv.push_str(&format!(",log10_{}", mode.label()));
        columns.push((mode, series.log10_series(1e-18)));
    }
    csv.push('\n');
    let n = columns[0].1.len();
    for p in 0..n {
        csv.push_str(&format!("{:.6}", columns[0].1[p].0));
        for (_, pts) in &columns {
            csv.push_str(&format!(",{:.4}", pts[p].1));
        }
        csv.push('\n');
    }
    write_report("fig2_javg_log10.csv", &csv).expect("report");

    println!("Figure 2 summary — log10 |javg deviation| at the final step:");
    for (mode, pts) in &columns {
        println!("  {:<12} {:+.2}", mode.label(), pts.last().expect("points").1);
    }
    println!("\npaper shape check: BF16, TF32 and BF16x3 track closely without divergence;");
    println!("deviations sit orders of magnitude below the signal (paper: ~1e-5 a.u.).");
    Ok(())
}

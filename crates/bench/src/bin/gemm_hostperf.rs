//! `gemm_hostperf`: host-side GEMM cost baseline (`BENCH_gemm.json`).
//!
//! The emulated compute modes pay a host-side tax on every call —
//! op-materialisation, rounded copies, BF16 split planes, the product
//! accumulator. This binary pins that tax down so every future PR has a
//! perf baseline to compare against:
//!
//! * **end-to-end** `ns/call` for `sgemm` across the Table VII `remap_occ`
//!   shapes in every real compute mode (plus `cgemm` in `COMPLEX_3M`),
//!   with `k` scaled down by `--k-scale` so the software kernel finishes
//!   in bench time (the paper's shapes are GPU-scale);
//! * **allocs/call** over the timed steady-state calls, counted by a
//!   `#[global_allocator]` wrapper — the workspace pool's contract is
//!   that this is exactly zero;
//! * **host-side prep throughput** at the *full* `k = 64³` acceptance
//!   shape `(128, 896, 262144)`: the pre-workspace prep path (fresh
//!   allocations, materialise-always, serial quantise/split) re-created
//!   here in the bench, timed against the pooled prep path the library
//!   now runs, giving an honest `speedup_vs_legacy` for the host-side
//!   work without timing the (unchanged) FP32 kernel.
//!
//! Every `calls[]` row also carries the **modelled device time** for the
//! full Table VII shape on the `xe-gpu` stack model, plus the modelled
//! speedup over FP32 — the quantities behind Tables VI/VII.
//!
//! Usage: `gemm_hostperf [--k-scale N] [--prep-k N] [--reps N]
//! [--warmup N] [--out PATH] [--enforce-zero-alloc]
//! [--max-bf16x2-ratio F] [--max-bf16x3-ratio F]`
//!
//! `--enforce-zero-alloc` exits non-zero if any steady-state call
//! allocated — the CI regression gate.
//!
//! `--max-bf16x2-ratio` / `--max-bf16x3-ratio` gate the measured
//! BF16x2/STANDARD and BF16x3/STANDARD `ns_per_call` ratios at the
//! 128×1920 Table VII shape: if a split mode costs more than the given
//! multiple of STANDARD, the run exits non-zero. This is the CI tripwire
//! against regressing to per-plane `matmul_acc` passes (historically
//! 3×/6–7×; the packed kernel holds ~1.5–2×/2–3×).
//!
//! **k labeling:** every measured number is taken at
//! `k_measured = 262144 / k_scale` and labeled as such — `ns_per_call`
//! is at `k_measured`, while `modelled_device_s` /
//! `modelled_speedup_vs_fp32` always price the *full* Table VII shape
//! (`k_table7 = 262144`). `ns_per_call_table7_est` bridges the two with
//! an explicit linear-in-k extrapolation (`ns_per_call × k_scale`).
//!
//! **`--from-trace events.jsonl`** switches to trace-replay mode: instead
//! of running the sweep, the per-call attribution table is recomputed
//! from a telemetry JSONL dump (the `telemetry_check` artifact) through
//! the `dcmesh-profile` ingester, and every trace-derived mean device
//! time and speedup is checked against the direct device-model path
//! within `--tolerance-pct` (default 5%). Exits non-zero on
//! disagreement, so CI can gate on trace attribution staying honest.

use dcmesh_numerics::{bf16, c32, split, tf32, C32};
use dcmesh_profile::{ingest, table};
use mkl_lite::device::{Domain, GemmDesc};
use mkl_lite::workspace;
use mkl_lite::{cgemm, sgemm, with_compute_mode, ComputeMode, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapper counting every allocation (not bytes — the
/// pool's promise is *zero calls*, so a count is the sharpest signal).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, new) }
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The Table VII remap GEMM shapes: m = N_occ = 128, n = N_orb − N_occ,
/// k = N_grid = 64³.
const TABLE7_K: usize = 262_144;
const TABLE7_SHAPES: [(usize, usize); 4] = [(128, 128), (128, 896), (128, 1920), (128, 3968)];
/// The acceptance-criterion shape (N_orb = 1024 row of Table VII).
const PREP_SHAPE: (usize, usize) = (128, 896);

const SGEMM_MODES: [ComputeMode; 5] = [
    ComputeMode::Standard,
    ComputeMode::FloatToTf32,
    ComputeMode::FloatToBf16,
    ComputeMode::FloatToBf16x2,
    ComputeMode::FloatToBf16x3,
];

struct Options {
    k_scale: usize,
    prep_k: usize,
    reps: usize,
    warmup: usize,
    out: String,
    enforce_zero_alloc: bool,
    max_x2_ratio: Option<f64>,
    max_x3_ratio: Option<f64>,
    from_trace: Option<String>,
    tolerance_pct: f64,
}

fn parse_args() -> Options {
    let mut o = Options {
        k_scale: 64,
        prep_k: TABLE7_K,
        reps: 2,
        warmup: 2,
        out: "BENCH_gemm.json".to_string(),
        enforce_zero_alloc: false,
        max_x2_ratio: None,
        max_x3_ratio: None,
        from_trace: None,
        tolerance_pct: 5.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let num = |a: &mut dyn Iterator<Item = String>| -> usize {
            a.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("missing/invalid value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--k-scale" => o.k_scale = num(&mut args).max(1),
            "--prep-k" => o.prep_k = num(&mut args).max(1),
            "--reps" => o.reps = num(&mut args).max(1),
            "--warmup" => o.warmup = num(&mut args),
            "--out" => {
                o.out = args.next().unwrap_or_else(|| {
                    eprintln!("missing value for --out");
                    std::process::exit(2);
                })
            }
            "--enforce-zero-alloc" => o.enforce_zero_alloc = true,
            "--max-bf16x2-ratio" | "--max-bf16x3-ratio" => {
                let v: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("missing/invalid value for {flag}");
                    std::process::exit(2);
                });
                if flag == "--max-bf16x2-ratio" {
                    o.max_x2_ratio = Some(v);
                } else {
                    o.max_x3_ratio = Some(v);
                }
            }
            "--from-trace" => {
                o.from_trace = Some(args.next().unwrap_or_else(|| {
                    eprintln!("missing value for --from-trace");
                    std::process::exit(2);
                }))
            }
            "--tolerance-pct" => {
                o.tolerance_pct =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("missing/invalid value for --tolerance-pct");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    o
}

fn mode_label(mode: ComputeMode) -> &'static str {
    mode.env_value().unwrap_or("STANDARD")
}

/// One JSON entry of the end-to-end sweep.
struct Entry {
    routine: &'static str,
    mode: ComputeMode,
    m: usize,
    n: usize,
    k_table: usize,
    k_measured: usize,
    ns_per_call: f64,
    allocs_per_call: f64,
    /// Modelled device seconds for the *full* Table VII shape on the
    /// `xe-gpu` stack model (the Tables VI/VII quantity).
    modelled_device_s: f64,
    /// Modelled speedup of this mode over FP32 at the full shape.
    modelled_speedup_vs_fp32: f64,
}

/// Element domain of a BLAS routine name, for pricing trace rows.
fn domain_for(routine: &str) -> Option<Domain> {
    match routine {
        "SGEMM" => Some(Domain::Real32),
        "DGEMM" => Some(Domain::Real64),
        "CGEMM" => Some(Domain::Complex32),
        "ZGEMM" => Some(Domain::Complex64),
        _ => None,
    }
}

/// `--from-trace`: recompute the per-call attribution from a telemetry
/// JSONL dump and check it against the direct device-model path.
fn run_from_trace(path: &str, tolerance_pct: f64) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let trace = ingest::ingest_jsonl(&text);
    for w in &trace.warnings {
        eprintln!("trace warning: {w}");
    }
    let rows = table::gemm_table(&trace);
    if rows.is_empty() {
        eprintln!("no GEMM call spans in {path}");
        std::process::exit(1);
    }
    println!("{}", table::render_gemm_table(&rows));

    let model = xe_gpu::XeStackModel::new(xe_gpu::MAX_1550_STACK);
    let mut checked = 0u32;
    let mut problems = 0u32;
    for r in &rows {
        let (Some(dev), Some(domain), Ok(mode)) = (
            r.mean_device_s,
            domain_for(&r.routine),
            ComputeMode::from_env_value(&r.mode),
        ) else {
            continue;
        };
        let (m, n, k) = (r.m as usize, r.n as usize, r.k as usize);
        let direct = model.gemm_seconds(&GemmDesc { domain, m, n, k, mode });
        let dev_err = 100.0 * (dev - direct).abs() / direct.max(1e-30);
        checked += 1;
        let mut verdicts = format!("device {dev:.3e}s vs model {direct:.3e}s ({dev_err:.2}%)");
        if dev_err > tolerance_pct {
            problems += 1;
        }
        if let Some(speedup) = r.speedup_vs_fp32 {
            let direct_speedup = model.gemm_speedup_vs_fp32(domain, m, n, k, mode);
            let sp_err = 100.0 * (speedup - direct_speedup).abs() / direct_speedup.max(1e-30);
            verdicts.push_str(&format!(
                ", speedup {speedup:.2}x vs model {direct_speedup:.2}x ({sp_err:.2}%)"
            ));
            if sp_err > tolerance_pct {
                problems += 1;
            }
        }
        eprintln!("check {} {:>16} ({m}, {n}, {k}): {verdicts}", r.routine, r.mode);
    }
    if checked == 0 {
        eprintln!("no rows carried modelled device times; nothing to check");
        std::process::exit(1);
    }
    if problems > 0 {
        eprintln!(
            "from-trace: {problems} disagreement(s) beyond {tolerance_pct}% across {checked} rows"
        );
        std::process::exit(1);
    }
    eprintln!("from-trace: {checked} rows agree with the direct path within {tolerance_pct}%");
    std::process::exit(0);
}

/// Times `reps` steady-state calls of `f` (after `warmup` unmeasured
/// ones) and returns (ns/call, allocs/call).
fn measure(warmup: usize, reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    for _ in 0..warmup {
        f();
    }
    let allocs_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    let elapsed = t0.elapsed();
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - allocs_before;
    (elapsed.as_nanos() as f64 / reps as f64, allocs as f64 / reps as f64)
}

/// The **pre-workspace** host-side prep for one `sgemm` call: always
/// materialise op(A)/op(B) into fresh `Vec`s, allocate fresh rounded
/// copies / split planes, allocate the product accumulator. This is the
/// code shape the library ran before the pool existed; it lives here so
/// `speedup_vs_legacy` is measured, not remembered.
fn legacy_prep(mode: ComputeMode, a: &[f32], b: &[f32], m: usize, n: usize, k: usize) {
    // Materialise op(A) (Op::None: straight row copy — ld == cols here,
    // but the legacy path copied regardless).
    let mut am = Vec::with_capacity(m * k);
    am.extend_from_slice(a);
    let mut bm = Vec::with_capacity(k * n);
    bm.extend_from_slice(b);
    match mode {
        ComputeMode::Standard | ComputeMode::Complex3m => {}
        ComputeMode::FloatToTf32 => {
            let mut ar = vec![0.0f32; am.len()];
            let mut br = vec![0.0f32; bm.len()];
            tf32::quantize_slice(&am, &mut ar);
            tf32::quantize_slice(&bm, &mut br);
            black_box((&ar[0], &br[0]));
        }
        ComputeMode::FloatToBf16 => {
            let mut ar = vec![0.0f32; am.len()];
            let mut br = vec![0.0f32; bm.len()];
            bf16::quantize_slice(&am, &mut ar);
            bf16::quantize_slice(&bm, &mut br);
            black_box((&ar[0], &br[0]));
        }
        ComputeMode::FloatToBf16x2 | ComputeMode::FloatToBf16x3 => {
            let depth = mode.split_depth().expect("split mode");
            let mut ap: Vec<Vec<f32>> = (0..depth).map(|_| vec![0.0f32; am.len()]).collect();
            let mut bp: Vec<Vec<f32>> = (0..depth).map(|_| vec![0.0f32; bm.len()]).collect();
            {
                let mut views: Vec<&mut [f32]> = ap.iter_mut().map(|p| &mut p[..]).collect();
                split::split_slice(&am, &mut views);
            }
            {
                let mut views: Vec<&mut [f32]> = bp.iter_mut().map(|p| &mut p[..]).collect();
                split::split_slice(&bm, &mut views);
            }
            black_box((&ap[0][0], &bp[0][0]));
        }
    }
    let acc = vec![0.0f32; m * n];
    black_box((&am[0], &bm[0], &acc[0]));
}

/// The **current** host-side prep: zero-copy operand views (dense,
/// `Op::None`), pooled scratch, chunked `round_slice_into` /
/// `split_slice_into` — exactly what `real_gemm_impl` + `matmul_acc_lowp`
/// do before the kernel runs.
fn pooled_prep(mode: ComputeMode, a: &[f32], b: &[f32], m: usize, n: usize, _k: usize) {
    match mode {
        ComputeMode::Standard | ComputeMode::Complex3m => {}
        ComputeMode::FloatToTf32 => {
            let mut ar = workspace::take_scratch::<f32>(a.len());
            let mut br = workspace::take_scratch::<f32>(b.len());
            tf32::round_slice_into(a, &mut ar);
            tf32::round_slice_into(b, &mut br);
            black_box((&ar[0], &br[0]));
        }
        ComputeMode::FloatToBf16 => {
            let mut ar = workspace::take_scratch::<f32>(a.len());
            let mut br = workspace::take_scratch::<f32>(b.len());
            bf16::round_slice_into(a, &mut ar);
            bf16::round_slice_into(b, &mut br);
            black_box((&ar[0], &br[0]));
        }
        ComputeMode::FloatToBf16x2 | ComputeMode::FloatToBf16x3 => {
            // Fixed-size plane arrays, mirroring the library's split path:
            // no container `Vec`s, and the unused third plane is a
            // zero-length take that never touches the pool.
            let depth = mode.split_depth().expect("split mode");
            let len = |d: usize, l: usize| if depth > d { l } else { 0 };
            let mut ap = [
                workspace::take_scratch::<f32>(len(0, a.len())),
                workspace::take_scratch::<f32>(len(1, a.len())),
                workspace::take_scratch::<f32>(len(2, a.len())),
            ];
            let mut bp = [
                workspace::take_scratch::<f32>(len(0, b.len())),
                workspace::take_scratch::<f32>(len(1, b.len())),
                workspace::take_scratch::<f32>(len(2, b.len())),
            ];
            {
                let [p0, p1, p2] = &mut ap;
                let mut views: [&mut [f32]; 3] = [&mut p0[..], &mut p1[..], &mut p2[..]];
                split::split_slice_into(a, &mut views[..depth]);
            }
            {
                let [p0, p1, p2] = &mut bp;
                let mut views: [&mut [f32]; 3] = [&mut p0[..], &mut p1[..], &mut p2[..]];
                split::split_slice_into(b, &mut views[..depth]);
            }
            black_box((&ap[0][0], &bp[0][0]));
        }
    }
    let acc = workspace::take_zeroed::<f32>(m * n);
    black_box(&acc[0]);
}

fn json_f64(v: f64) -> String {
    if v.is_finite() { format!("{v:.1}") } else { "null".to_string() }
}

/// Today's civil date (UTC) as `YYYY-MM-DD`, from the system clock —
/// the days-to-civil conversion is the classic era/epoch-shift
/// algorithm, exact over the entire `u64` seconds range used here.
fn civil_date_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let o = parse_args();
    if let Some(path) = &o.from_trace {
        run_from_trace(path, o.tolerance_pct);
    }
    let model = xe_gpu::XeStackModel::new(xe_gpu::MAX_1550_STACK);
    let mut rng = StdRng::seed_from_u64(0xbea7);
    let mut entries: Vec<Entry> = Vec::new();
    let mut prep_lines: Vec<String> = Vec::new();
    let mut dirty_modes: Vec<String> = Vec::new();

    // --- end-to-end sweep: sgemm over Table VII shapes × real modes ---
    let k_meas = (TABLE7_K / o.k_scale).max(1);
    eprintln!(
        "k-scale {}: ns/call measured at k = {k_meas} (Table VII k = {TABLE7_K}); \
         modelled_* columns always price the full Table VII shape",
        o.k_scale
    );
    let kmax = k_meas;
    let nmax = TABLE7_SHAPES.iter().map(|s| s.1).max().unwrap();
    let a_full: Vec<f32> = (0..128 * kmax).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let b_full: Vec<f32> = (0..kmax * nmax).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    for &(m, n) in &TABLE7_SHAPES {
        let a = &a_full[..m * k_meas];
        let b = &b_full[..k_meas * n];
        let mut c = vec![0.0f32; m * n];
        for mode in SGEMM_MODES {
            let (ns, allocs) = with_compute_mode(mode, || {
                measure(o.warmup, o.reps, || {
                    sgemm(Op::None, Op::None, m, n, k_meas, 1.0, a, k_meas, b, n, 0.0, &mut c, n);
                })
            });
            black_box(&c[0]);
            eprintln!(
                "sgemm {:>16} ({m}, {n}, {k_meas}): {:>12.0} ns/call, {allocs} allocs/call",
                mode_label(mode),
                ns
            );
            if allocs > 0.0 {
                dirty_modes.push(format!("SGEMM/{} ({m},{n},{k_meas})", mode_label(mode)));
            }
            let desc =
                GemmDesc { domain: Domain::Real32, m, n, k: TABLE7_K, mode };
            entries.push(Entry {
                routine: "SGEMM",
                mode,
                m,
                n,
                k_table: TABLE7_K,
                k_measured: k_meas,
                ns_per_call: ns,
                allocs_per_call: allocs,
                modelled_device_s: model.gemm_seconds(&desc),
                modelled_speedup_vs_fp32: model
                    .gemm_speedup_vs_fp32(Domain::Real32, m, n, TABLE7_K, mode),
            });
        }
    }

    // cgemm COMPLEX_3M at the acceptance shape, so the complex pooled path
    // (separated real planes + 3M temporaries) is in the baseline too.
    {
        let (m, n) = PREP_SHAPE;
        let ac: Vec<C32> =
            (0..m * k_meas).map(|_| c32(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect();
        let bc: Vec<C32> =
            (0..k_meas * n).map(|_| c32(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect();
        let mut cc = vec![C32::zero(); m * n];
        for mode in [ComputeMode::Standard, ComputeMode::Complex3m] {
            let (ns, allocs) = with_compute_mode(mode, || {
                measure(o.warmup, o.reps, || {
                    cgemm(
                        Op::None,
                        Op::None,
                        m,
                        n,
                        k_meas,
                        C32::one(),
                        &ac,
                        k_meas,
                        &bc,
                        n,
                        C32::zero(),
                        &mut cc,
                        n,
                    );
                })
            });
            black_box(&cc[0]);
            eprintln!(
                "cgemm {:>16} ({m}, {n}, {k_meas}): {:>12.0} ns/call, {allocs} allocs/call",
                mode_label(mode),
                ns
            );
            if allocs > 0.0 {
                dirty_modes.push(format!("CGEMM/{} ({m},{n},{k_meas})", mode_label(mode)));
            }
            let desc =
                GemmDesc { domain: Domain::Complex32, m, n, k: TABLE7_K, mode };
            entries.push(Entry {
                routine: "CGEMM",
                mode,
                m,
                n,
                k_table: TABLE7_K,
                k_measured: k_meas,
                ns_per_call: ns,
                allocs_per_call: allocs,
                modelled_device_s: model.gemm_seconds(&desc),
                modelled_speedup_vs_fp32: model
                    .gemm_speedup_vs_fp32(Domain::Complex32, m, n, TABLE7_K, mode),
            });
        }
    }

    // --- host-side prep: legacy vs pooled at the full acceptance shape ---
    let (pm, pn) = PREP_SHAPE;
    let pk = o.prep_k;
    let pa: Vec<f32> = (0..pm * pk).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let pb: Vec<f32> = (0..pk * pn).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    for mode in SGEMM_MODES {
        let (legacy_ns, _) =
            measure(1, o.reps, || legacy_prep(mode, &pa, &pb, pm, pn, pk));
        let (pooled_ns, pooled_allocs) =
            measure(o.warmup.max(2), o.reps, || pooled_prep(mode, &pa, &pb, pm, pn, pk));
        let speedup = legacy_ns / pooled_ns.max(1.0);
        eprintln!(
            "prep  {:>16} ({pm}, {pn}, {pk}): legacy {:>12.0} ns, pooled {:>12.0} ns, {:.2}x, \
             {pooled_allocs} allocs/call",
            mode_label(mode),
            legacy_ns,
            pooled_ns,
            speedup
        );
        if pooled_allocs > 0.0 {
            dirty_modes.push(format!("PREP/{} ({pm},{pn},{pk})", mode_label(mode)));
        }
        prep_lines.push(format!(
            "    {{\"mode\": \"{}\", \"m\": {pm}, \"n\": {pn}, \"k\": {pk}, \
             \"legacy_ns_per_call\": {}, \"pooled_ns_per_call\": {}, \
             \"speedup_vs_legacy\": {:.2}, \"pooled_allocs_per_call\": {pooled_allocs}}}",
            mode_label(mode),
            json_f64(legacy_ns),
            json_f64(pooled_ns),
            speedup
        ));
    }

    // --- workspace-pool traffic, through the telemetry registry ---
    // `publish_metrics` snapshots this thread's pool counters into
    // telemetry gauges; the report reads them back from the registry so
    // the numbers printed here are exactly the ones a Prometheus scrape
    // (or the `telemetry_check` artifact) would carry.
    workspace::publish_metrics();
    let pool = workspace::combined_stats();
    let hit_ratio = pool.hit_ratio();
    // The ratio is a fraction by contract — an idle pool reports 1.0,
    // never NaN — and a violation here means the JSON below (and every
    // dashboard reading it) would carry garbage.
    assert!(
        hit_ratio.is_finite() && (0.0..=1.0).contains(&hit_ratio),
        "pool hit_ratio must be a finite fraction in [0, 1], got {hit_ratio}"
    );
    eprintln!(
        "pool  takes {} misses {} grows {} returns {} bytes_outstanding {} hit_ratio {:.4}",
        pool.takes, pool.misses, pool.grows, pool.returns, pool.bytes_outstanding, hit_ratio
    );
    eprintln!("--- telemetry metrics ---\n{}", dcmesh_telemetry::export::prometheus_dump());

    // --- BENCH_gemm.json ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"gemm_hostperf\",\n");
    json.push_str(&format!("  \"k_scale\": {},\n", o.k_scale));
    json.push_str(&format!("  \"k_table7\": {TABLE7_K},\n"));
    json.push_str(&format!("  \"k_measured\": {k_meas},\n"));
    json.push_str(
        "  \"k_note\": \"ns_per_call is measured at k_measured; modelled_* price the full \
         k_table7 shape; ns_per_call_table7_est = ns_per_call * k_table7 / k_measured \
         (linear-in-k extrapolation)\",\n",
    );
    json.push_str(&format!(
        "  \"pool\": {{\"takes\": {}, \"misses\": {}, \"grows\": {}, \"returns\": {}, \
         \"bytes_outstanding\": {}, \"hit_ratio\": {:.4}}},\n",
        pool.takes, pool.misses, pool.grows, pool.returns, pool.bytes_outstanding, hit_ratio
    ));
    json.push_str("  \"calls\": [\n");
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"routine\": \"{}\", \"mode\": \"{}\", \"m\": {}, \"n\": {}, \
                 \"k_table7\": {}, \"k_measured\": {}, \"ns_per_call\": {}, \
                 \"ns_per_call_table7_est\": {}, \
                 \"allocs_per_call\": {}, \"modelled_device_s\": {:.6e}, \
                 \"modelled_speedup_vs_fp32\": {:.4}}}",
                e.routine,
                mode_label(e.mode),
                e.m,
                e.n,
                e.k_table,
                e.k_measured,
                json_f64(e.ns_per_call),
                json_f64(e.ns_per_call * (e.k_table as f64 / e.k_measured as f64)),
                e.allocs_per_call,
                e.modelled_device_s,
                e.modelled_speedup_vs_fp32
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"host_prep\": [\n");
    json.push_str(&prep_lines.join(",\n"));
    json.push_str("\n  ],\n");

    // --- dated history: carry prior runs' summary rows forward ---
    // Each run appends (or, same-day, replaces) one compact entry, so
    // the checked-in baseline accumulates a trend line CI can plot
    // without any external storage.
    let today = civil_date_utc();
    let gate_ns = |mode: ComputeMode| {
        entries
            .iter()
            .find(|e| e.routine == "SGEMM" && e.mode == mode && e.m == 128 && e.n == 1920)
            .map(|e| e.ns_per_call)
            .unwrap_or(f64::NAN)
    };
    let new_entry = format!(
        "{{\"date\":\"{today}\",\"k_scale\":{},\"hit_ratio\":{:.4},\
         \"sgemm_128x1920_ns_per_call\":{{\"STANDARD\":{},\"FLOAT_TO_BF16X2\":{},\
         \"FLOAT_TO_BF16X3\":{}}}}}",
        o.k_scale,
        hit_ratio,
        json_f64(gate_ns(ComputeMode::Standard)),
        json_f64(gate_ns(ComputeMode::FloatToBf16x2)),
        json_f64(gate_ns(ComputeMode::FloatToBf16x3)),
    );
    let mut history: Vec<String> = std::fs::read_to_string(&o.out)
        .ok()
        .and_then(|old| dcmesh_telemetry::json::parse(&old).ok())
        .and_then(|doc| {
            doc.get("history")
                .and_then(|h| h.as_array())
                .map(|a| a.iter().map(dcmesh_telemetry::json::dump).collect())
        })
        .unwrap_or_default();
    // Same-day reruns replace their entry instead of stacking up.
    history.retain(|h| !h.contains(&format!("\"date\":\"{today}\"")));
    history.push(new_entry);
    json.push_str("  \"history\": [\n    ");
    json.push_str(&history.join(",\n    "));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&o.out, &json).expect("write BENCH_gemm.json");
    eprintln!("[wrote {} ({} history entr{})]", o.out, history.len(),
        if history.len() == 1 { "y" } else { "ies" });

    if o.enforce_zero_alloc && !dirty_modes.is_empty() {
        eprintln!("steady-state allocations detected in: {}", dirty_modes.join(", "));
        std::process::exit(1);
    }

    // --- split-mode perf-ratio gate (128×1920 Table VII shape) ---
    // The tripwire against regressing the packed split-plane kernel back
    // to independent per-plane passes: BF16x2 / BF16x3 must stay within
    // the given multiple of STANDARD at the same measured shape.
    if o.max_x2_ratio.is_some() || o.max_x3_ratio.is_some() {
        let (gm, gn) = (128usize, 1920usize);
        let ns_of = |mode: ComputeMode| {
            entries
                .iter()
                .find(|e| e.routine == "SGEMM" && e.mode == mode && e.m == gm && e.n == gn)
                .map(|e| e.ns_per_call)
        };
        let Some(std_ns) = ns_of(ComputeMode::Standard).filter(|ns| *ns > 0.0) else {
            eprintln!("perf-ratio gate: no STANDARD ({gm}, {gn}) row to compare against");
            std::process::exit(1);
        };
        let mut failures = 0u32;
        for (mode, max) in [
            (ComputeMode::FloatToBf16x2, o.max_x2_ratio),
            (ComputeMode::FloatToBf16x3, o.max_x3_ratio),
        ] {
            let Some(max) = max else { continue };
            let Some(ns) = ns_of(mode) else {
                eprintln!("perf-ratio gate: no {} ({gm}, {gn}) row", mode_label(mode));
                failures += 1;
                continue;
            };
            let ratio = ns / std_ns;
            let verdict = if ratio <= max { "ok" } else { "FAIL" };
            eprintln!(
                "perf-ratio {}/STANDARD ({gm}, {gn}, {k_meas}): {ratio:.2}x (max {max:.2}x) \
                 {verdict}",
                mode_label(mode)
            );
            if ratio > max {
                failures += 1;
            }
        }
        if failures > 0 {
            eprintln!("perf-ratio gate: {failures} mode(s) over threshold");
            std::process::exit(1);
        }
    }
}

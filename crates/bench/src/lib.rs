//! Shared helpers for the reproduction harness binaries.

pub mod report;

pub use report::{markdown_table, write_report};

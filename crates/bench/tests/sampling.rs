//! ISSUE acceptance: span-aware sampling at `TELEMETRY=events` must not
//! distort attribution — the weighted folded totals of a 1-in-16 sampled
//! run stay within 10% of the unsampled (`full`) run.
//!
//! The comparison is on **modelled device seconds**, which the installed
//! `xe-gpu` model computes deterministically per call shape, so the only
//! error source is the sampling itself (which calls the stride lands on),
//! not timer noise.

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::runner::run_simulation;
use dcmesh_profile::ingest;
use dcmesh_telemetry as telemetry;
use mkl_lite::{with_compute_mode, ComputeMode};
use telemetry::{export, sink, TelemetryLevel};

fn tiny() -> RunConfig {
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.mesh_points = 10;
    cfg.n_orb = 8;
    cfg.n_occ = 4;
    cfg.total_qd_steps = 40;
    cfg.qd_steps_per_md = 20;
    cfg.laser_duration_fs = 0.03;
    cfg.laser_amplitude = 0.4;
    cfg
}

/// Sum of `weight x device_s` over every BLAS call span in a JSONL dump
/// — the quantity the flamegraph folder and the attribution tables both
/// integrate.
fn weighted_device_total(jsonl: &str) -> f64 {
    let trace = ingest::ingest_jsonl(jsonl);
    trace
        .spans
        .iter()
        .filter_map(|s| s.attr_f64("device_s").map(|d| d * s.weight))
        .sum()
}

#[test]
fn sampled_weighted_totals_match_full_run_within_10pct() {
    let _model = xe_gpu::install_default_model();
    let cfg = tiny();

    let full = telemetry::with_level(TelemetryLevel::Full, || {
        sink::clear();
        with_compute_mode(ComputeMode::FloatToBf16, || run_simulation::<f32>(&cfg))
            .expect("full-telemetry run");
        export::jsonl(&sink::drain())
    });

    let sampled = telemetry::with_level(TelemetryLevel::Events, || {
        sink::clear();
        let saved = telemetry::sample_interval();
        telemetry::set_sample_interval(16);
        telemetry::span::reset_sample_counter();
        let r = with_compute_mode(ComputeMode::FloatToBf16, || run_simulation::<f32>(&cfg));
        telemetry::set_sample_interval(saved);
        r.expect("sampled run");
        export::jsonl(&sink::drain())
    });

    let t_full = weighted_device_total(&full);
    let t_sampled = weighted_device_total(&sampled);
    assert!(t_full > 0.0, "full run recorded no modelled device time");

    let full_trace = ingest::ingest_jsonl(&full);
    let sampled_trace = ingest::ingest_jsonl(&sampled);
    assert!(
        sampled_trace.spans.len() * 8 < full_trace.spans.len(),
        "sampling did not thin the stream: {} vs {} spans",
        sampled_trace.spans.len(),
        full_trace.spans.len()
    );
    assert_eq!(sampled_trace.meta.sample_n, 16, "meta line carries the interval");

    let rel = (t_sampled - t_full).abs() / t_full;
    assert!(
        rel < 0.10,
        "weighted sampled total {t_sampled:.6e}s deviates {:.1}% from full total {t_full:.6e}s",
        rel * 100.0
    );
}

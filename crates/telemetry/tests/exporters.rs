//! End-to-end exporter coverage: events produced through the real span
//! API must export to Chrome trace-event JSON that parses as valid JSON
//! with correctly nested `B`/`E` pairs and monotonically ordered
//! per-thread timestamps, and to JSONL that parses back line-for-line.

use dcmesh_telemetry as telemetry;
use telemetry::json::JsonValue;
use telemetry::{export, sink, AttrValue, Event, TelemetryLevel};

/// Runs a little three-level instrumented workload and returns its
/// events: burst → qd_step → 2 BLAS spans, plus an escalation instant
/// and two device kernels.
fn produce_events() -> Vec<Event> {
    telemetry::with_level(TelemetryLevel::Full, || {
        sink::clear();
        {
            let _burst = telemetry::span("burst")
                .attr("burst_index", AttrValue::U64(0))
                .attr("mode", AttrValue::Str("FLOAT_TO_BF16"))
                .enter();
            {
                let _step = telemetry::span("qd_step").enter();
                for routine in ["ZGEMM", "ZGEMM"] {
                    let _call = telemetry::span(routine)
                        .attr("m", AttrValue::U64(128))
                        .attr("n", AttrValue::U64(896))
                        .attr("k", AttrValue::U64(4096))
                        .enter();
                }
            }
            telemetry::instant(
                "escalation",
                vec![telemetry::Attr {
                    key: "from",
                    value: AttrValue::Str("FLOAT_TO_BF16"),
                }],
            );
        }
        telemetry::device_complete("zgemm_kernel", 0.0, 1.5e-3, vec![]);
        telemetry::device_complete("stencil", 1.5e-3, 2.0e-3, vec![]);
        sink::drain()
    })
}

/// Validates B/E nesting per (pid, tid): every E must match the name of
/// the most recent unclosed B, and all stacks must end empty.
fn check_nesting(rows: &[&JsonValue]) {
    use std::collections::HashMap;
    let mut stacks: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    for row in rows {
        let ph = row.get("ph").unwrap().as_str().unwrap();
        let key = (
            row.get("pid").unwrap().as_f64().unwrap() as u64,
            row.get("tid").unwrap().as_f64().unwrap() as u64,
        );
        let name = row.get("name").unwrap().as_str().unwrap().to_string();
        match ph {
            "B" => stacks.entry(key).or_default().push(name),
            "E" => {
                let top = stacks.get_mut(&key).and_then(Vec::pop);
                assert_eq!(top.as_deref(), Some(name.as_str()), "unbalanced E for {name}");
            }
            _ => {}
        }
    }
    for (key, stack) in stacks {
        assert!(stack.is_empty(), "unclosed spans {stack:?} on {key:?}");
    }
}

#[test]
fn chrome_trace_parses_nests_and_orders() {
    let events = produce_events();
    let text = export::chrome_trace(&events);

    let doc = telemetry::json::parse(&text).expect("chrome trace must be valid JSON");
    let rows = doc.get("traceEvents").unwrap().as_array().unwrap();
    let non_meta: Vec<&JsonValue> =
        rows.iter().filter(|r| r.get("ph").unwrap().as_str() != Some("M")).collect();

    // B/E nesting: burst ⊃ qd_step ⊃ ZGEMM, all balanced.
    check_nesting(&non_meta);

    // Monotonic timestamps per (pid, tid) in file order.
    use std::collections::HashMap;
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    for row in &non_meta {
        let key = (
            row.get("pid").unwrap().as_f64().unwrap() as u64,
            row.get("tid").unwrap().as_f64().unwrap() as u64,
        );
        let ts = row.get("ts").unwrap().as_f64().unwrap();
        if let Some(prev) = last_ts.insert(key, ts) {
            assert!(ts >= prev, "timestamps regressed: {prev} -> {ts}");
        }
    }

    // Both tracks are present: host spans and the simulated kernel
    // timeline as a separate pid.
    let host = non_meta
        .iter()
        .filter(|r| r.get("pid").unwrap().as_f64() == Some(export::HOST_PID as f64))
        .count();
    let device: Vec<&&JsonValue> = non_meta
        .iter()
        .filter(|r| r.get("pid").unwrap().as_f64() == Some(export::DEVICE_PID as f64))
        .collect();
    assert!(host >= 9, "expected the burst/step/BLAS span pairs, got {host}");
    assert_eq!(device.len(), 2, "expected two device kernels");
    for d in &device {
        assert_eq!(d.get("ph").unwrap().as_str(), Some("X"));
        assert!(d.get("dur").unwrap().as_f64().unwrap() > 0.0);
    }

    // BLAS span attributes survive into args.
    let zgemm_b = non_meta
        .iter()
        .find(|r| {
            r.get("name").unwrap().as_str() == Some("ZGEMM")
                && r.get("ph").unwrap().as_str() == Some("B")
        })
        .expect("a ZGEMM begin event");
    let args = zgemm_b.get("args").unwrap();
    assert_eq!(args.get("m").unwrap().as_f64(), Some(128.0));
    assert_eq!(args.get("k").unwrap().as_f64(), Some(4096.0));
}

#[test]
fn jsonl_round_trips() {
    let events = produce_events();
    let text = export::jsonl(&events);
    let parsed = export::parse_jsonl(&text).expect("every JSONL line parses");
    assert_eq!(parsed.len(), events.len() + 1, "meta line + one line per event");
    let meta = &parsed[0];
    assert_eq!(meta.get("name").unwrap().as_str(), Some("telemetry_meta"));
    assert!(meta.get("args").unwrap().get("run_epoch").unwrap().as_f64().unwrap() > 0.0);
    for (p, e) in parsed[1..].iter().zip(&events) {
        assert_eq!(p.get("seq").unwrap().as_f64(), Some(e.seq as f64));
        assert_eq!(p.get("ts_ns").unwrap().as_f64(), Some(e.ts_ns as f64));
        assert_eq!(p.get("name").unwrap().as_str(), Some(e.name));
        assert_eq!(p.get("tid").unwrap().as_f64(), Some(e.tid as f64));
        assert_eq!(p.get("track").unwrap().as_str(), Some(e.track.as_str()));
        assert_eq!(p.get("args").unwrap().as_array(), None, "args is an object");
        for a in &e.attrs {
            let got = p.get("args").unwrap().get(a.key).expect("attr present");
            match &a.value {
                AttrValue::U64(v) => assert_eq!(got.as_f64(), Some(*v as f64)),
                AttrValue::F64(v) => assert_eq!(got.as_f64(), Some(*v)),
                AttrValue::Str(s) => assert_eq!(got.as_str(), Some(*s)),
                AttrValue::Text(s) => assert_eq!(got.as_str(), Some(s.as_str())),
            }
        }
    }
    // Serialising the parsed form again is bytewise stable for a simple
    // seq filter: spot-check one line re-renders identically.
    let line1 = text.lines().nth(1).unwrap();
    let reparsed = telemetry::json::parse(line1).unwrap();
    assert_eq!(reparsed.get("kind").unwrap().as_str(), Some("B"));
}

#[test]
fn prometheus_dump_renders_counters() {
    let c = telemetry::metrics::counter("exporter_test_total", "integration test counter");
    c.add(3);
    let dump = export::prometheus_dump();
    assert!(dump.contains("exporter_test_total"), "{dump}");
}

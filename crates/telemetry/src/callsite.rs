//! Callsite identity: stable IDs for every BLAS call's provenance.
//!
//! The per-callsite autotuner (ROADMAP) needs to know *which* call in
//! the program issued a GEMM, not just its shape — `lfd::eigensolve`
//! can afford a different precision than `lfd::qd_propagate`. The paper
//! family this follows ("Tunable Precision Emulation via Automatic BLAS
//! Offloading", PAPERS.md) keys its decisions on exactly this
//! (call-phase, routine) pair.
//!
//! A callsite ID is `"{phase}/{routine}"`, e.g. `lfd::eigensolve/cgemm`
//! or `qxmd::scf_refresh/dgemm`. The **phase** half is set by the
//! enclosing code via [`phase_scope`] — an RAII guard holding a
//! thread-local `&'static str` — and the **routine** half is supplied by
//! `mkl_lite::logged` at the call chokepoint. IDs are interned to
//! `&'static str` so they can ride in [`crate::AttrValue::Str`] span
//! attributes and be hashed/compared by pointer-free `&str` equality in
//! the [`crate::ledger`] without per-call allocation after first use.
//!
//! Phase scoping is *unconditional* (one `Cell` swap, no atomics, no
//! branches on telemetry level) so the phase is always correct even if
//! telemetry is enabled mid-run.

use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Phase used when no [`phase_scope`] is active.
pub const DEFAULT_PHASE: &str = "app";

thread_local! {
    static CURRENT_PHASE: Cell<&'static str> = const { Cell::new(DEFAULT_PHASE) };
}

/// RAII guard restoring the previous phase on drop. Created by
/// [`phase_scope`].
pub struct PhaseScope {
    prev: &'static str,
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        CURRENT_PHASE.with(|c| c.set(self.prev));
    }
}

/// Enters a named phase on this thread (e.g. `"lfd::eigensolve"`).
/// Nested scopes shadow outer ones; the guard restores the outer phase
/// on drop. Cost is one thread-local `Cell` swap regardless of
/// telemetry level.
#[must_use = "the phase ends when the returned guard is dropped"]
pub fn phase_scope(name: &'static str) -> PhaseScope {
    CURRENT_PHASE.with(|c| {
        let prev = c.get();
        c.set(name);
        PhaseScope { prev }
    })
}

/// The phase currently active on this thread ([`DEFAULT_PHASE`] when no
/// scope is active).
pub fn current_phase() -> &'static str {
    CURRENT_PHASE.with(|c| c.get())
}

fn registry() -> &'static Mutex<BTreeSet<&'static str>> {
    static REGISTRY: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    &REGISTRY
}

/// Interns an arbitrary string, returning a `&'static str` that lives
/// for the process. Each unique string leaks exactly once; repeated
/// calls return the existing interned copy.
pub fn intern(s: &str) -> &'static str {
    let mut reg = registry().lock().unwrap();
    if let Some(existing) = reg.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    reg.insert(leaked);
    leaked
}

/// Mints the callsite ID for a routine called from the current phase:
/// `"{phase}/{routine-lowercased}"`. The result is interned, so the
/// common path after warm-up is one lock plus a `BTreeSet` lookup and
/// no allocation.
pub fn callsite_for(routine: &str) -> &'static str {
    let phase = current_phase();
    let mut id = String::with_capacity(phase.len() + 1 + routine.len());
    id.push_str(phase);
    id.push('/');
    for ch in routine.chars() {
        id.extend(ch.to_lowercase());
    }
    intern(&id)
}

/// Every callsite ID minted so far, sorted. Diagnostic surface for the
/// ledger exporter and tests.
pub fn all_callsites() -> Vec<&'static str> {
    registry().lock().unwrap().iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_phase_is_app() {
        // Other tests on this thread may have scopes open; run in a
        // fresh thread to observe the default.
        std::thread::spawn(|| {
            assert_eq!(current_phase(), DEFAULT_PHASE);
            assert_eq!(callsite_for("SGEMM"), "app/sgemm");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn scopes_nest_and_restore() {
        std::thread::spawn(|| {
            let _outer = phase_scope("lfd::eigensolve");
            assert_eq!(current_phase(), "lfd::eigensolve");
            assert_eq!(callsite_for("CGEMM"), "lfd::eigensolve/cgemm");
            {
                let _inner = phase_scope("lfd::qd_propagate");
                assert_eq!(callsite_for("ZGEMM"), "lfd::qd_propagate/zgemm");
            }
            assert_eq!(current_phase(), "lfd::eigensolve");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn interning_is_stable() {
        let a = callsite_for("DGEMM_callsite_test");
        let b = callsite_for("DGEMM_callsite_test");
        assert!(std::ptr::eq(a, b), "same pointer for repeated interns");
        assert!(all_callsites().contains(&a));
    }

    #[test]
    fn phase_is_thread_local() {
        let _scope = phase_scope("qxmd::md_step");
        let other = std::thread::spawn(current_phase).join().unwrap();
        assert_eq!(other, DEFAULT_PHASE);
    }
}

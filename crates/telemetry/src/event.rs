//! The event model: what one telemetry record carries.
//!
//! Events are built to be cheap on the hot path: names and attribute
//! keys are `&'static str`, and the common attribute values (`u64`,
//! `f64`, static strings) store inline. Owned strings ([`AttrValue::Text`])
//! exist for rare events (a health-violation description) where one
//! allocation is irrelevant.

use std::fmt;

/// Maximum attributes per event. Chosen to fit the widest producer (a
/// BLAS call span: routine, ops, shape, mode, domain, pool stats).
pub const MAX_ATTRS: usize = 10;

/// One typed attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (shapes, counts, indices).
    U64(u64),
    /// Floating point (seconds, ratios).
    F64(f64),
    /// Static string (mode labels, routine names).
    Str(&'static str),
    /// Owned string, for rare events only.
    Text(String),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Text(s) => write!(f, "{s}"),
        }
    }
}

/// A key/value attribute.
#[derive(Clone, Debug, PartialEq)]
pub struct Attr {
    /// Attribute key.
    pub key: &'static str,
    /// Attribute value.
    pub value: AttrValue,
}

/// Which timeline an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Track {
    /// Host wall-clock time (spans, instants).
    Host,
    /// The `xe-gpu` simulated device clock (modelled kernel executions).
    Device,
}

impl Track {
    /// Stable string form used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Track::Host => "host",
            Track::Device => "device",
        }
    }
}

/// Event kind, mapping one-to-one onto Chrome trace-event phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span enter (Chrome phase `B`).
    SpanBegin,
    /// Span exit (Chrome phase `E`).
    SpanEnd,
    /// A point event (Chrome phase `i`).
    Instant,
    /// A complete slice with explicit duration (Chrome phase `X`) — used
    /// for device kernels whose start/duration come from the simulated
    /// clock rather than host `Instant`s.
    Complete {
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
}

impl EventKind {
    /// The Chrome trace-event `ph` letter.
    pub fn phase(self) -> char {
        match self {
            EventKind::SpanBegin => 'B',
            EventKind::SpanEnd => 'E',
            EventKind::Instant => 'i',
            EventKind::Complete { .. } => 'X',
        }
    }
}

/// One telemetry event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Timestamp in nanoseconds: since process telemetry epoch for host
    /// events, since simulated-clock zero for device events.
    pub ts_ns: u64,
    /// Event name (span name, kernel name, event type).
    pub name: &'static str,
    /// What kind of record this is.
    pub kind: EventKind,
    /// Which timeline the timestamp lives on.
    pub track: Track,
    /// Logical thread id (small dense integers assigned per thread).
    pub tid: u64,
    /// Attributes (at most [`MAX_ATTRS`]; extras are dropped, counted by
    /// the sink's `truncated_attrs` counter).
    pub attrs: Vec<Attr>,
}

impl Event {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|a| a.key == key).map(|a| &a.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_match_chrome_convention() {
        assert_eq!(EventKind::SpanBegin.phase(), 'B');
        assert_eq!(EventKind::SpanEnd.phase(), 'E');
        assert_eq!(EventKind::Instant.phase(), 'i');
        assert_eq!(EventKind::Complete { dur_ns: 5 }.phase(), 'X');
    }

    #[test]
    fn attr_lookup() {
        let e = Event {
            seq: 0,
            ts_ns: 0,
            name: "x",
            kind: EventKind::Instant,
            track: Track::Host,
            tid: 0,
            attrs: vec![Attr { key: "m", value: AttrValue::U64(128) }],
        };
        assert_eq!(e.attr("m"), Some(&AttrValue::U64(128)));
        assert_eq!(e.attr("n"), None);
    }
}

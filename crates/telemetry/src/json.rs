//! Minimal JSON value, writer, and parser.
//!
//! The offline build environment has no `serde`/`serde_json` (external
//! dependencies resolve to the vendored shims in `shims/`), so the
//! exporters hand-write JSON and the round-trip tests and the
//! `telemetry_check` schema validator parse it back with this module.
//! It implements the subset the telemetry formats use — objects, arrays,
//! strings with escapes, finite numbers, booleans, null — and rejects
//! everything else loudly.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value if this is an object member, else `None`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The f64 if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The str if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The slice if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes `s` into a JSON string literal (with quotes).
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes an `f64` as JSON: finite values plainly, non-finite as `null`
/// (JSON has no NaN/Inf).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trippable form Rust offers.
        let s = format!("{v}");
        s
    } else {
        "null".to_string()
    }
}

/// Serialises a [`JsonValue`] back to compact JSON text. Object keys
/// come out in `BTreeMap` order, numbers in their shortest
/// round-trippable form, non-finite numbers as `null` — so
/// `parse(dump(v))` round-trips for everything JSON can represent.
pub fn dump(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Number(n) => number(*n),
        JsonValue::String(s) => escape_string(s),
        JsonValue::Array(items) => {
            let body: Vec<String> = items.iter().map(dump).collect();
            format!("[{}]", body.join(","))
        }
        JsonValue::Object(members) => {
            let body: Vec<String> =
                members.iter().map(|(k, v)| format!("{}:{}", escape_string(k), dump(v))).collect();
            format!("{{{}}}", body.join(","))
        }
    }
}

/// A parse failure with byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { message: msg.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal, expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| ParseError { message: format!("bad number {s:?}"), offset: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .expect("parse");
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn escape_round_trips() {
        let original = "quote\" slash\\ newline\n tab\t control\u{1} unicode\u{3b1}";
        let escaped = escape_string(original);
        let v = parse(&escaped).expect("parse");
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1.5), "1.5");
    }

    #[test]
    fn dump_round_trips_through_parse() {
        let text = r#"{"a":[1,2.5,-300],"b":{"c":"x\ny","d":true,"e":null},"z":"q\"uote"}"#;
        let v = parse(text).expect("parse");
        let dumped = dump(&v);
        assert_eq!(parse(&dumped).expect("reparse"), v);
        assert_eq!(dumped, text, "compact form is canonical");
    }
}

//! The event sink: a sharded, bounded, in-memory ring of [`Event`]s.
//!
//! Producers publish into one of [`SHARD_COUNT`] independently locked
//! shards selected by thread id, so concurrent QD-step threads almost
//! never contend on the same lock, and each critical section is a ring
//! push — "lock-free-ish": not a CAS loop, but no global lock and no
//! allocation in steady state (the ring reuses its storage once warm).
//!
//! The sink is **bounded**: when a shard's ring is full the oldest event
//! in that shard is dropped and counted, so a million-call run cannot
//! grow memory without limit (the same policy the `mkl_lite::verbose`
//! ring buffer adopts). Capacity comes from `TELEMETRY_BUFFER` or
//! [`set_capacity`].
//!
//! A global sequence number gives a total order across shards;
//! [`drain`] merges shards back into publication order.

use crate::event::{Attr, AttrValue, Event, EventKind, Track, MAX_ATTRS};
use crate::TELEMETRY_BUFFER_ENV;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Number of independently locked shards.
pub const SHARD_COUNT: usize = 16;

/// Default total event capacity across all shards.
pub const DEFAULT_CAPACITY: usize = 1 << 18; // 262 144 events

#[derive(Default)]
struct Shard {
    ring: VecDeque<Event>,
}

static SHARDS: [Mutex<Shard>; SHARD_COUNT] = [const { Mutex::new(Shard { ring: VecDeque::new() }) }; SHARD_COUNT];
static SEQ: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static TRUNCATED_ATTRS: AtomicU64 = AtomicU64::new(0);
/// 0 means "not yet initialised from the environment".
static CAPACITY: AtomicUsize = AtomicUsize::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();
/// Rank / divide-and-conquer domain id of this process (0 by default;
/// set once by the run entry points from `DCMESH_RANK`).
static RANK: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's small dense telemetry thread id.
pub fn thread_id() -> u64 {
    TID.try_with(|t| *t).unwrap_or(u64::MAX)
}

fn epoch() -> &'static (Instant, u64) {
    EPOCH.get_or_init(|| {
        let unix_ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        (Instant::now(), unix_ns)
    })
}

/// Nanoseconds since the process telemetry epoch (set on first use).
pub fn now_ns() -> u64 {
    epoch().0.elapsed().as_nanos() as u64
}

/// Wall-clock UNIX time (ns) at which this process's telemetry epoch —
/// the zero of every host `ts_ns` — was captured. Shared `run_epoch`
/// key: two ranks' traces are aligned by offsetting each stream by the
/// difference of their run epochs.
pub fn run_epoch_unix_ns() -> u64 {
    epoch().1
}

/// Sets this process's rank / domain id, stamped into the exported
/// metadata event so the multi-rank merger can tell streams apart.
pub fn set_rank(rank: u64) {
    RANK.store(rank, Ordering::Relaxed);
}

/// This process's rank / domain id (0 unless [`set_rank`] was called).
pub fn rank() -> u64 {
    RANK.load(Ordering::Relaxed)
}

/// The stream-metadata event exporters prepend to serialised dumps: the
/// shared `run_epoch` clock key, the rank, and the active sampling
/// interval. Synthetic — it never sits in the ring — so its `seq` is 0
/// and its timestamp is the epoch itself (`ts_ns` 0).
pub fn run_meta_event() -> Event {
    Event {
        seq: 0,
        ts_ns: 0,
        name: "telemetry_meta",
        kind: EventKind::Instant,
        track: Track::Host,
        tid: 0,
        attrs: vec![
            Attr { key: "run_epoch", value: AttrValue::U64(run_epoch_unix_ns()) },
            Attr { key: "rank", value: AttrValue::U64(rank()) },
            Attr { key: "sample_n", value: AttrValue::U64(crate::span::sample_interval()) },
        ],
    }
}

fn capacity_total() -> usize {
    let c = CAPACITY.load(Ordering::Relaxed);
    if c != 0 {
        return c;
    }
    let c = std::env::var(TELEMETRY_BUFFER_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CAPACITY);
    CAPACITY.store(c, Ordering::Relaxed);
    c
}

/// Sets the total event capacity (spread across shards; at least one
/// event per shard). Shrinking takes effect as shards next publish.
pub fn set_capacity(total: usize) {
    CAPACITY.store(total.max(SHARD_COUNT), Ordering::Relaxed);
}

/// Current total event capacity.
pub fn capacity() -> usize {
    capacity_total()
}

/// Events discarded because a shard's ring was full.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Attributes discarded because an event carried more than
/// [`MAX_ATTRS`].
pub fn truncated_attrs() -> u64 {
    TRUNCATED_ATTRS.load(Ordering::Relaxed)
}

/// Publishes one event. Callers are expected to have checked the level
/// gate already ([`crate::spans_enabled`] / [`crate::events_enabled`]);
/// publishing is unconditional so export-time tooling can inject
/// synthetic events.
pub fn publish(
    name: &'static str,
    kind: EventKind,
    track: Track,
    ts_ns: u64,
    mut attrs: Vec<Attr>,
) {
    if attrs.len() > MAX_ATTRS {
        TRUNCATED_ATTRS.fetch_add((attrs.len() - MAX_ATTRS) as u64, Ordering::Relaxed);
        attrs.truncate(MAX_ATTRS);
    }
    let tid = thread_id();
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let per_shard = (capacity_total() / SHARD_COUNT).max(1);
    let shard = &SHARDS[(tid as usize) % SHARD_COUNT];
    let mut guard = shard.lock();
    while guard.ring.len() >= per_shard {
        guard.ring.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    guard.ring.push_back(Event { seq, ts_ns, name, kind, track, tid, attrs });
}

/// Removes and returns all buffered events, merged into global
/// publication order.
pub fn drain() -> Vec<Event> {
    let mut out: Vec<Event> = Vec::new();
    for shard in &SHARDS {
        out.extend(std::mem::take(&mut shard.lock().ring));
    }
    out.sort_by_key(|e| e.seq);
    out
}

/// Returns a copy of all buffered events without clearing, merged into
/// global publication order.
pub fn snapshot() -> Vec<Event> {
    let mut out: Vec<Event> = Vec::new();
    for shard in &SHARDS {
        out.extend(shard.lock().ring.iter().cloned());
    }
    out.sort_by_key(|e| e.seq);
    out
}

/// Clears all buffered events and the drop counters.
pub fn clear() {
    for shard in &SHARDS {
        shard.lock().ring.clear();
    }
    DROPPED.store(0, Ordering::Relaxed);
    TRUNCATED_ATTRS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AttrValue;

    fn attr(key: &'static str, v: u64) -> Attr {
        Attr { key, value: AttrValue::U64(v) }
    }

    /// Serialises sink tests against the span tests (which hold the
    /// level-override lock) so a concurrent `drain` cannot steal their
    /// events mid-assertion.
    fn serialized(f: impl FnOnce()) {
        crate::level::with_level(crate::level::level(), f)
    }

    #[test]
    fn publish_drain_orders_by_seq() {
        serialized(|| {
        clear();
        publish("sink_test_a", EventKind::Instant, Track::Host, now_ns(), vec![]);
        publish("sink_test_b", EventKind::Instant, Track::Host, now_ns(), vec![]);
        let evs: Vec<_> =
            drain().into_iter().filter(|e| e.name.starts_with("sink_test_")).collect();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].seq < evs[1].seq);
        assert_eq!(evs[0].name, "sink_test_a");
        });
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        serialized(|| {
        clear();
        let saved = capacity();
        set_capacity(SHARD_COUNT); // one event per shard
        let before = dropped_events();
        for _ in 0..5 {
            publish("sink_cap_test", EventKind::Instant, Track::Host, 0, vec![]);
        }
        // This thread maps to one shard with capacity 1: four drops.
        assert_eq!(dropped_events() - before, 4);
        let kept: Vec<_> =
            drain().into_iter().filter(|e| e.name == "sink_cap_test").collect();
        assert_eq!(kept.len(), 1);
        set_capacity(saved);
        });
    }

    #[test]
    fn oversized_attr_lists_truncate() {
        serialized(|| {
        clear();
        let attrs: Vec<Attr> = (0..MAX_ATTRS + 3).map(|i| attr("k", i as u64)).collect();
        let before = truncated_attrs();
        publish("sink_attr_test", EventKind::Instant, Track::Host, 0, attrs);
        assert_eq!(truncated_attrs() - before, 3);
        let ev = drain().into_iter().find(|e| e.name == "sink_attr_test").unwrap();
        assert_eq!(ev.attrs.len(), MAX_ATTRS);
        });
    }

    #[test]
    fn concurrent_publishes_survive() {
        serialized(|| {
        clear();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..50 {
                        publish("sink_mt_test", EventKind::Instant, Track::Host, now_ns(), vec![]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        let n = drain().into_iter().filter(|e| e.name == "sink_mt_test").count();
        assert_eq!(n, 400);
        });
    }
}

//! The metrics registry: named counters, gauges, and log₂-bucketed
//! histograms with a Prometheus-style text dump.
//!
//! Handles are `Arc`s handed out once per call site (cache them in a
//! `OnceLock`); updates are single atomic operations, so a counter
//! increment on the BLAS hot path costs the same as the pool's existing
//! `PoolStats` bookkeeping. Registration is idempotent: asking for the
//! same name returns the same underlying metric.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log₂ buckets: values up to 2⁶³ land in a bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and per-run harnesses).
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A log₂-bucketed histogram of `u64` observations (typically
/// nanoseconds). Bucket `i` counts values whose upper bound is `2^i − 1`
/// (bucket 0 holds zero), so 64 buckets cover the full range with one
/// `leading_zeros` per observation — no configuration, no allocation.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, otherwise `64 − leading_zeros`
    /// capped to the last bucket.
    fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, 0 when empty.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Snapshot of non-empty `(upper_bound, cumulative_count)` pairs, in
    /// ascending bucket order — the Prometheus `le` series.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                let upper = if i == 0 { 0 } else { (1u64 << i).saturating_sub(1) };
                out.push((upper, cum));
            }
        }
        out
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    metric: Metric,
}

static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

fn get_or_insert<T>(
    name: &'static str,
    help: &'static str,
    select: impl Fn(&Metric) -> Option<Arc<T>>,
    make: impl FnOnce() -> (Arc<T>, Metric),
) -> Arc<T> {
    let mut reg = REGISTRY.lock();
    for e in reg.iter() {
        if e.name == name {
            return select(&e.metric).unwrap_or_else(|| {
                panic!("telemetry metric {name:?} already registered with a different type")
            });
        }
    }
    let (handle, metric) = make();
    reg.push(Entry { name, help, metric });
    handle
}

/// Gets or creates the counter `name`.
pub fn counter(name: &'static str, help: &'static str) -> Arc<Counter> {
    get_or_insert(
        name,
        help,
        |m| match m {
            Metric::Counter(c) => Some(c.clone()),
            _ => None,
        },
        || {
            let c = Arc::new(Counter::default());
            (c.clone(), Metric::Counter(c))
        },
    )
}

/// Gets or creates the gauge `name`.
pub fn gauge(name: &'static str, help: &'static str) -> Arc<Gauge> {
    get_or_insert(
        name,
        help,
        |m| match m {
            Metric::Gauge(g) => Some(g.clone()),
            _ => None,
        },
        || {
            let g = Arc::new(Gauge::default());
            (g.clone(), Metric::Gauge(g))
        },
    )
}

/// Gets or creates the histogram `name`.
pub fn histogram(name: &'static str, help: &'static str) -> Arc<Histogram> {
    get_or_insert(
        name,
        help,
        |m| match m {
            Metric::Histogram(h) => Some(h.clone()),
            _ => None,
        },
        || {
            let h = Arc::new(Histogram::default());
            (h.clone(), Metric::Histogram(h))
        },
    )
}

/// Escapes a string for use inside a Prometheus label value: backslash,
/// double quote, and newline get escaped per the text exposition format
/// (`\\`, `\"`, `\n`). Everything else passes through unchanged.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Renders every registered metric in Prometheus text exposition format.
pub fn prometheus_dump() -> String {
    let reg = REGISTRY.lock();
    let mut out = String::new();
    for e in reg.iter() {
        if !e.help.is_empty() {
            out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
        }
        match &e.metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {} counter\n{} {}\n", e.name, e.name, c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {} gauge\n{} {}\n", e.name, e.name, g.get()));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {} histogram\n", e.name));
                for (upper, cum) in h.cumulative_buckets() {
                    out.push_str(&format!("{}_bucket{{le=\"{upper}\"}} {cum}\n", e.name));
                }
                out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", e.name, h.count()));
                out.push_str(&format!("{}_sum {}\n", e.name, h.sum()));
                out.push_str(&format!("{}_count {}\n", e.name, h.count()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_idempotent() {
        let a = counter("metrics_test_counter", "a test counter");
        let b = counter("metrics_test_counter", "a test counter");
        a.reset();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit the same counter");
    }

    #[test]
    fn gauge_set_get() {
        let g = gauge("metrics_test_gauge", "a test gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_accumulate() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(3);
        h.observe(1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1004);
        assert_eq!(h.mean(), 251.0);
        let buckets = h.cumulative_buckets();
        // 0 → bucket 0 (le 0); 1 → le 1; 3 → le 3; 1000 → le 1023.
        assert_eq!(buckets, vec![(0, 1), (1, 2), (3, 3), (1023, 4)]);
    }

    #[test]
    fn prometheus_dump_contains_registered_metrics() {
        let c = counter("metrics_test_dump_total", "dump test");
        c.reset();
        c.add(7);
        let h = histogram("metrics_test_dump_ns", "dump histogram");
        h.observe(5);
        let dump = prometheus_dump();
        assert!(dump.contains("# TYPE metrics_test_dump_total counter"), "{dump}");
        assert!(dump.contains("metrics_test_dump_total 7"), "{dump}");
        assert!(dump.contains("metrics_test_dump_ns_bucket{le=\"7\"}"), "{dump}");
        assert!(dump.contains("metrics_test_dump_ns_count"), "{dump}");
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        counter("metrics_test_confused", "as counter");
        gauge("metrics_test_confused", "as gauge");
    }

    #[test]
    fn label_escaping_covers_quotes_backslashes_newlines() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("line1\nline2"), r"line1\nline2");
        // Combined: every special character in one value, in order.
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
        // Idempotence is NOT expected: escaping an escaped string
        // escapes the backslashes again.
        assert_eq!(escape_label_value(r"\n"), r"\\n");
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive() {
        // A value exactly on a bucket's upper bound must land in that
        // bucket (`le` semantics), not the next one up.
        let h = Histogram::default();
        h.observe(1); // upper bound of bucket 1 is 2^1 - 1 = 1
        assert_eq!(h.cumulative_buckets(), vec![(1, 1)]);
        let h = Histogram::default();
        h.observe(3); // upper bound of bucket 2 is 2^2 - 1 = 3
        assert_eq!(h.cumulative_buckets(), vec![(3, 1)]);
        let h = Histogram::default();
        h.observe(4); // first value of bucket 3 (le 7)
        assert_eq!(h.cumulative_buckets(), vec![(7, 1)]);
        let h = Histogram::default();
        h.observe(1023);
        h.observe(1024);
        assert_eq!(h.cumulative_buckets(), vec![(1023, 1), (2047, 2)]);
    }

    #[test]
    fn prometheus_dump_emits_inf_bucket_equal_to_count() {
        let h = histogram("metrics_test_inf_bucket_ns", "inf bucket test");
        h.observe(0);
        h.observe(u64::MAX); // saturates into the last bucket
        let dump = prometheus_dump();
        let inf_line = dump
            .lines()
            .find(|l| l.starts_with("metrics_test_inf_bucket_ns_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket line present");
        assert_eq!(inf_line, "metrics_test_inf_bucket_ns_bucket{le=\"+Inf\"} 2");
        // The +Inf bucket must equal _count per the exposition format.
        assert!(dump.contains("metrics_test_inf_bucket_ns_count 2"), "{dump}");
    }
}

//! Exporters: JSONL event log, Chrome trace-event JSON, and the
//! Prometheus text dump re-exported from [`crate::metrics`].
//!
//! The Chrome trace uses two `pid`s so Perfetto / `chrome://tracing`
//! renders the host spans and the simulated `xe-gpu` kernel timeline as
//! separate process tracks: pid 1 is host wall-clock, pid 2 is the
//! simulated device clock. Both are microsecond timestamps as the format
//! requires.

use crate::event::{AttrValue, Event, EventKind, Track};
use crate::json::{self, JsonValue, ParseError};

/// Chrome-trace pid for host wall-clock events.
pub const HOST_PID: u64 = 1;
/// Chrome-trace pid for the simulated device timeline.
pub const DEVICE_PID: u64 = 2;

use crate::sink;
use std::sync::{Arc, OnceLock};

fn dropped_events_gauge() -> &'static Arc<crate::metrics::Gauge> {
    static G: OnceLock<Arc<crate::metrics::Gauge>> = OnceLock::new();
    G.get_or_init(|| {
        crate::metrics::gauge(
            "telemetry_dropped_events",
            "events discarded because the sink ring was full",
        )
    })
}

fn truncated_attrs_gauge() -> &'static Arc<crate::metrics::Gauge> {
    static G: OnceLock<Arc<crate::metrics::Gauge>> = OnceLock::new();
    G.get_or_init(|| {
        crate::metrics::gauge(
            "telemetry_truncated_attrs",
            "attributes discarded because an event exceeded MAX_ATTRS",
        )
    })
}

/// Renders every registered metric in Prometheus text format, after
/// refreshing the sink-health gauges (`telemetry_dropped_events`,
/// `telemetry_truncated_attrs`) so a scrape — or the `profile` ingester
/// reading `metrics.prom` — can judge trace coverage without access to
/// the process.
pub fn prometheus_dump() -> String {
    dropped_events_gauge().set(sink::dropped_events() as f64);
    truncated_attrs_gauge().set(sink::truncated_attrs() as f64);
    crate::metrics::prometheus_dump()
}

fn attrs_json(ev: &Event) -> String {
    let mut out = String::from("{");
    for (i, a) in ev.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json::escape_string(a.key));
        out.push(':');
        match &a.value {
            AttrValue::U64(v) => out.push_str(&v.to_string()),
            AttrValue::F64(v) => out.push_str(&json::number(*v)),
            AttrValue::Str(s) => out.push_str(&json::escape_string(s)),
            AttrValue::Text(s) => out.push_str(&json::escape_string(s)),
        }
    }
    out.push('}');
    out
}

fn micros(ts_ns: u64) -> String {
    // Microseconds with nanosecond precision kept in the fraction.
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

/// One event as a single-line JSON object (the JSONL schema).
///
/// Fields: `seq`, `ts_ns` (u64), `kind` (`B|E|i|X`), `name`, `track`
/// (`host|device`), `tid`, `args` (object), and `dur_ns` for `X` events.
pub fn jsonl_line(ev: &Event) -> String {
    let mut out = String::with_capacity(128);
    out.push_str(&format!(
        "{{\"seq\":{},\"ts_ns\":{},\"kind\":\"{}\",\"name\":{},\"track\":\"{}\",\"tid\":{}",
        ev.seq,
        ev.ts_ns,
        ev.kind.phase(),
        json::escape_string(ev.name),
        ev.track.as_str(),
        ev.tid
    ));
    if let EventKind::Complete { dur_ns } = ev.kind {
        out.push_str(&format!(",\"dur_ns\":{dur_ns}"));
    }
    out.push_str(&format!(",\"args\":{}}}", attrs_json(ev)));
    out
}

/// Serialises events as JSONL: one stream-metadata line (the
/// `telemetry_meta` event carrying `run_epoch`, `rank`, `sample_n` —
/// see [`sink::run_meta_event`]) followed by one JSON object per event.
/// The metadata line has the same schema as every other line, so
/// consumers that don't care about it parse it like any instant event.
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    out.push_str(&jsonl_line(&sink::run_meta_event()));
    out.push('\n');
    out.push_str(&jsonl_body(events));
    out
}

/// The JSONL body alone — no `telemetry_meta` header. For appending
/// incremental batches to a stream whose header was already written
/// (the shard worker's per-burst flush), so live consumers like
/// `profile watch` can tail a run in progress.
pub fn jsonl_body(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&jsonl_line(ev));
        out.push('\n');
    }
    out
}

/// Parses a JSONL document back into one [`JsonValue`] per line
/// (skipping blank lines). The inverse of [`jsonl`] up to JSON value
/// equality — used by the round-trip tests and `telemetry_check`.
pub fn parse_jsonl(input: &str) -> Result<Vec<JsonValue>, ParseError> {
    input.lines().filter(|l| !l.trim().is_empty()).map(json::parse).collect()
}

/// Serialises events as Chrome trace-event JSON (the "JSON Array
/// Format" with a `traceEvents` wrapper), loadable in Perfetto and
/// `chrome://tracing`. Host events land on pid [`HOST_PID`] with their
/// recording thread's tid; device events land on pid [`DEVICE_PID`].
pub fn chrome_trace(events: &[Event]) -> String {
    let mut rows: Vec<String> = Vec::with_capacity(events.len() + 4);
    rows.push(format!(
        "{{\"ph\":\"M\",\"pid\":{HOST_PID},\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"dcmesh host\"}}}}"
    ));
    rows.push(format!(
        "{{\"ph\":\"M\",\"pid\":{DEVICE_PID},\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"xe-gpu simulated device\"}}}}"
    ));
    rows.push(format!(
        "{{\"ph\":\"M\",\"pid\":{DEVICE_PID},\"tid\":0,\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"L0 queue (modelled)\"}}}}"
    ));
    for ev in events {
        let (pid, tid) = match ev.track {
            Track::Host => (HOST_PID, ev.tid),
            Track::Device => (DEVICE_PID, 0),
        };
        let mut row = format!(
            "{{\"ph\":\"{}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":{}",
            ev.kind.phase(),
            micros(ev.ts_ns),
            json::escape_string(ev.name)
        );
        match ev.kind {
            EventKind::Complete { dur_ns } => {
                row.push_str(&format!(",\"dur\":{}", micros(dur_ns)));
            }
            EventKind::Instant => {
                // Thread-scoped instant marker.
                row.push_str(",\"s\":\"t\"");
            }
            _ => {}
        }
        row.push_str(&format!(",\"cat\":\"{}\"", ev.track.as_str()));
        if !ev.attrs.is_empty() {
            row.push_str(&format!(",\"args\":{}", attrs_json(ev)));
        }
        row.push('}');
        rows.push(row);
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n", rows.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Attr;

    fn ev(seq: u64, name: &'static str, kind: EventKind, track: Track, ts_ns: u64) -> Event {
        Event {
            seq,
            ts_ns,
            name,
            kind,
            track,
            tid: 3,
            attrs: vec![
                Attr { key: "m", value: AttrValue::U64(128) },
                Attr { key: "mode", value: AttrValue::Str("FLOAT_TO_BF16") },
                Attr { key: "secs", value: AttrValue::F64(0.25) },
            ],
        }
    }

    #[test]
    fn jsonl_parses_back_field_for_field() {
        let events = vec![
            ev(0, "SGEMM", EventKind::SpanBegin, Track::Host, 1_234),
            ev(1, "SGEMM", EventKind::SpanEnd, Track::Host, 9_999),
            ev(2, "kernel", EventKind::Complete { dur_ns: 777 }, Track::Device, 10),
        ];
        let text = jsonl(&events);
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed.len(), 4, "meta line + 3 events");
        let meta = &parsed[0];
        assert_eq!(meta.get("name").unwrap().as_str(), Some("telemetry_meta"));
        assert!(meta.get("args").unwrap().get("run_epoch").unwrap().as_f64().unwrap() > 0.0);
        assert!(meta.get("args").unwrap().get("rank").is_some());
        assert!(meta.get("args").unwrap().get("sample_n").is_some());
        for (p, e) in parsed[1..].iter().zip(&events) {
            assert_eq!(p.get("seq").unwrap().as_f64(), Some(e.seq as f64));
            assert_eq!(p.get("ts_ns").unwrap().as_f64(), Some(e.ts_ns as f64));
            assert_eq!(p.get("name").unwrap().as_str(), Some(e.name));
            assert_eq!(p.get("track").unwrap().as_str(), Some(e.track.as_str()));
            assert_eq!(
                p.get("kind").unwrap().as_str(),
                Some(e.kind.phase().to_string().as_str())
            );
            let args = p.get("args").unwrap();
            assert_eq!(args.get("m").unwrap().as_f64(), Some(128.0));
            assert_eq!(args.get("mode").unwrap().as_str(), Some("FLOAT_TO_BF16"));
            assert_eq!(args.get("secs").unwrap().as_f64(), Some(0.25));
        }
        assert_eq!(parsed[3].get("dur_ns").unwrap().as_f64(), Some(777.0));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_both_tracks() {
        let events = vec![
            ev(0, "burst", EventKind::SpanBegin, Track::Host, 0),
            ev(1, "burst", EventKind::SpanEnd, Track::Host, 2_000),
            ev(2, "zgemm_bf16", EventKind::Complete { dur_ns: 500 }, Track::Device, 0),
        ];
        let text = chrome_trace(&events);
        let doc = crate::json::parse(&text).expect("valid JSON");
        let rows = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 3 metadata + 3 events.
        assert_eq!(rows.len(), 6);
        let pids: Vec<f64> =
            rows.iter().map(|r| r.get("pid").unwrap().as_f64().unwrap()).collect();
        assert!(pids.contains(&(HOST_PID as f64)));
        assert!(pids.contains(&(DEVICE_PID as f64)));
        // The X row carries a dur in microseconds.
        let x = rows.iter().find(|r| r.get("ph").unwrap().as_str() == Some("X")).unwrap();
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn timestamps_render_as_microseconds() {
        assert_eq!(micros(1_234_567), "1234.567");
        assert_eq!(micros(999), "0.999");
    }
}

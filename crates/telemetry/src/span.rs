//! Span and instant-event producer API.
//!
//! A [`SpanGuard`] publishes a `SpanBegin` when armed and the matching
//! `SpanEnd` on drop, so nesting is enforced by scope — exactly the
//! `B`/`E` pairing Chrome trace-event JSON wants. When spans are
//! disabled the guard is inert: construction is one relaxed atomic load
//! and drop does nothing.

use crate::event::{Attr, AttrValue, EventKind, Track};
use crate::level::{events_enabled, spans_enabled};
use crate::sink;

/// RAII span: `Begin` on creation (when enabled), `End` on drop.
///
/// Attributes added with [`attr`](SpanGuard::attr) *before the guard is
/// dropped but after creation* attach to the **begin** event if added
/// via the builder chain, because the begin event is published lazily on
/// the first non-builder use or at drop. In practice: chain `.attr(...)`
/// immediately after [`span`], then let the guard live to the end of
/// scope.
#[must_use = "a span ends when the guard drops; binding it to _ ends it immediately"]
pub struct SpanGuard {
    name: &'static str,
    /// `Some` while the begin event is still pending publication.
    pending: Option<Vec<Attr>>,
    /// Attributes attached to the end event (results known at exit:
    /// wall time, pool-traffic deltas, modelled device seconds).
    end_attrs: Vec<Attr>,
    armed: bool,
}

impl SpanGuard {
    /// Adds an attribute to the span's begin event. No-op when disabled.
    pub fn attr(mut self, key: &'static str, value: AttrValue) -> SpanGuard {
        if let Some(attrs) = self.pending.as_mut() {
            attrs.push(Attr { key, value });
        }
        self
    }

    /// True when this guard will publish events (level was `Full` at
    /// creation). Lets callers skip computing end-attribute values.
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Adds an attribute to the span's **end** event. No-op when
    /// disabled.
    pub fn end_attr(&mut self, key: &'static str, value: AttrValue) {
        if self.armed {
            self.end_attrs.push(Attr { key, value });
        }
    }

    /// Publishes the begin event now (normally it is published when the
    /// builder chain ends via [`enter`](SpanGuard::enter) or at drop).
    fn flush_begin(&mut self) {
        if let Some(attrs) = self.pending.take() {
            sink::publish(self.name, EventKind::SpanBegin, Track::Host, sink::now_ns(), attrs);
        }
    }

    /// Ends the builder chain, publishing the begin event. Optional —
    /// dropping the guard publishes both events — but calling it keeps
    /// the begin timestamp next to the work rather than at first attr.
    pub fn enter(mut self) -> SpanGuard {
        if self.armed {
            self.flush_begin();
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.flush_begin();
        let end_attrs = std::mem::take(&mut self.end_attrs);
        sink::publish(self.name, EventKind::SpanEnd, Track::Host, sink::now_ns(), end_attrs);
    }
}

/// Opens a span named `name` on the host track. Inert unless the level
/// is `Full`.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let armed = spans_enabled();
    SpanGuard { name, pending: armed.then(Vec::new), end_attrs: Vec::new(), armed }
}

/// Publishes an instant event on the host track. Inert unless the level
/// is `Events` or `Full`.
#[inline]
pub fn instant(name: &'static str, attrs: Vec<Attr>) {
    if !events_enabled() {
        return;
    }
    sink::publish(name, EventKind::Instant, Track::Host, sink::now_ns(), attrs);
}

/// Publishes a complete slice on the **device** track: `start_s` and
/// `dur_s` are read off the simulated device clock, not the host clock.
/// Inert unless the level is `Full`.
#[inline]
pub fn device_complete(name: &'static str, start_s: f64, dur_s: f64, attrs: Vec<Attr>) {
    if !spans_enabled() {
        return;
    }
    let ts_ns = (start_s * 1e9).max(0.0) as u64;
    let dur_ns = (dur_s * 1e9).max(0.0) as u64;
    sink::publish(name, EventKind::Complete { dur_ns }, Track::Device, ts_ns, attrs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{with_level, TelemetryLevel};
    use crate::sink::drain;

    #[test]
    fn span_emits_nested_begin_end_pairs() {
        with_level(TelemetryLevel::Full, || {
            crate::sink::clear();
            {
                let _outer = span("span_test_outer").attr("i", AttrValue::U64(1)).enter();
                let _inner = span("span_test_inner").enter();
            }
            let evs: Vec<_> =
                drain().into_iter().filter(|e| e.name.starts_with("span_test_")).collect();
            assert_eq!(evs.len(), 4);
            assert_eq!(evs[0].name, "span_test_outer");
            assert_eq!(evs[0].kind, EventKind::SpanBegin);
            assert_eq!(evs[0].attr("i"), Some(&AttrValue::U64(1)));
            assert_eq!(evs[1].name, "span_test_inner");
            // Inner ends before outer.
            assert_eq!(evs[2].name, "span_test_inner");
            assert_eq!(evs[2].kind, EventKind::SpanEnd);
            assert_eq!(evs[3].name, "span_test_outer");
            assert!(evs[0].ts_ns <= evs[1].ts_ns && evs[2].ts_ns <= evs[3].ts_ns);
        });
    }

    #[test]
    fn disabled_span_publishes_nothing() {
        with_level(TelemetryLevel::Events, || {
            crate::sink::clear();
            let _g = span("span_test_disabled").attr("x", AttrValue::U64(9)).enter();
            drop(_g);
            assert!(drain().iter().all(|e| e.name != "span_test_disabled"));
        });
    }

    #[test]
    fn instant_respects_events_level() {
        with_level(TelemetryLevel::Off, || {
            crate::sink::clear();
            instant("span_test_instant", vec![]);
            assert!(drain().iter().all(|e| e.name != "span_test_instant"));
        });
        with_level(TelemetryLevel::Events, || {
            instant("span_test_instant", vec![]);
            let evs = drain();
            assert!(evs.iter().any(|e| e.name == "span_test_instant"));
        });
    }

    #[test]
    fn device_complete_lands_on_device_track() {
        with_level(TelemetryLevel::Full, || {
            crate::sink::clear();
            device_complete("span_test_kernel", 1.5, 0.25, vec![]);
            let ev = drain().into_iter().find(|e| e.name == "span_test_kernel").unwrap();
            assert_eq!(ev.track, Track::Device);
            assert_eq!(ev.ts_ns, 1_500_000_000);
            assert_eq!(ev.kind, EventKind::Complete { dur_ns: 250_000_000 });
        });
    }
}

//! Span and instant-event producer API.
//!
//! A [`SpanGuard`] publishes a `SpanBegin` when armed and the matching
//! `SpanEnd` on drop, so nesting is enforced by scope — exactly the
//! `B`/`E` pairing Chrome trace-event JSON wants. When spans are
//! disabled the guard is inert: construction is one relaxed atomic load
//! and drop does nothing.

use crate::event::{Attr, AttrValue, EventKind, Track};
use crate::level::{events_enabled, spans_enabled};
use crate::sink;
use crate::TELEMETRY_SAMPLE_ENV;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// RAII span: `Begin` on creation (when enabled), `End` on drop.
///
/// Attributes added with [`attr`](SpanGuard::attr) *before the guard is
/// dropped but after creation* attach to the **begin** event if added
/// via the builder chain, because the begin event is published lazily on
/// the first non-builder use or at drop. In practice: chain `.attr(...)`
/// immediately after [`span`], then let the guard live to the end of
/// scope.
#[must_use = "a span ends when the guard drops; binding it to _ ends it immediately"]
pub struct SpanGuard {
    name: &'static str,
    /// `Some` while the begin event is still pending publication.
    pending: Option<Vec<Attr>>,
    /// Attributes attached to the end event (results known at exit:
    /// wall time, pool-traffic deltas, modelled device seconds).
    end_attrs: Vec<Attr>,
    armed: bool,
}

impl SpanGuard {
    /// Adds an attribute to the span's begin event. No-op when disabled.
    pub fn attr(mut self, key: &'static str, value: AttrValue) -> SpanGuard {
        if let Some(attrs) = self.pending.as_mut() {
            attrs.push(Attr { key, value });
        }
        self
    }

    /// True when this guard will publish events (level was `Full` at
    /// creation). Lets callers skip computing end-attribute values.
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Adds an attribute to the span's **end** event. No-op when
    /// disabled.
    pub fn end_attr(&mut self, key: &'static str, value: AttrValue) {
        if self.armed {
            self.end_attrs.push(Attr { key, value });
        }
    }

    /// Publishes the begin event now (normally it is published when the
    /// builder chain ends via [`enter`](SpanGuard::enter) or at drop).
    fn flush_begin(&mut self) {
        if let Some(attrs) = self.pending.take() {
            sink::publish(self.name, EventKind::SpanBegin, Track::Host, sink::now_ns(), attrs);
        }
    }

    /// Ends the builder chain, publishing the begin event. Optional —
    /// dropping the guard publishes both events — but calling it keeps
    /// the begin timestamp next to the work rather than at first attr.
    pub fn enter(mut self) -> SpanGuard {
        if self.armed {
            self.flush_begin();
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.flush_begin();
        let end_attrs = std::mem::take(&mut self.end_attrs);
        sink::publish(self.name, EventKind::SpanEnd, Track::Host, sink::now_ns(), end_attrs);
    }
}

/// Opens a span named `name` on the host track. Inert unless the level
/// is `Full`.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let armed = spans_enabled();
    SpanGuard { name, pending: armed.then(Vec::new), end_attrs: Vec::new(), armed }
}

/// Default sampling interval for high-frequency spans at the `events`
/// level: 1 call span recorded per [`DEFAULT_SAMPLE_INTERVAL`] calls.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 16;

/// 0 means "not yet initialised from the environment".
static SAMPLE_N: AtomicUsize = AtomicUsize::new(0);
/// Deterministic call counter driving the 1-in-N choice.
static SAMPLE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The sampling interval N for [`sampled_span`] at the `events` level,
/// read from `TELEMETRY_SAMPLE` on first use (default
/// [`DEFAULT_SAMPLE_INTERVAL`]; values < 1 clamp to 1).
pub fn sample_interval() -> u64 {
    let n = SAMPLE_N.load(Ordering::Relaxed);
    if n != 0 {
        return n as u64;
    }
    let n = std::env::var(TELEMETRY_SAMPLE_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_SAMPLE_INTERVAL);
    SAMPLE_N.store(n as usize, Ordering::Relaxed);
    n
}

/// Sets the sampling interval (overrides the environment). N = 1
/// records every call span at the `events` level.
pub fn set_sample_interval(n: u64) {
    SAMPLE_N.store(n.max(1) as usize, Ordering::Relaxed);
}

/// Resets the deterministic sample counter so the next sampled call
/// site is recorded first — test harnesses use this to make weighted
/// totals exactly reproducible.
pub fn reset_sample_counter() {
    SAMPLE_COUNTER.store(0, Ordering::Relaxed);
}

/// Opens a span for a **high-frequency** call site (per-BLAS-call).
///
/// * `Full` — identical to [`span`]: every call is recorded, weight 1.
/// * `Events` — span-aware sampling: a deterministic process-global
///   counter records 1 call in N ([`sample_interval`], env
///   `TELEMETRY_SAMPLE`, default 16), and the recorded span carries a
///   `sample_weight = N` begin attribute that the trace folder and
///   attribution tables use to rescale totals. Long runs stay bounded
///   but representative instead of losing the call population entirely.
/// * `Off` — inert, same one-relaxed-load cost as [`span`].
#[inline]
pub fn sampled_span(name: &'static str) -> SpanGuard {
    if spans_enabled() {
        return span(name);
    }
    if !events_enabled() {
        return SpanGuard { name, pending: None, end_attrs: Vec::new(), armed: false };
    }
    let n = sample_interval();
    let c = SAMPLE_COUNTER.fetch_add(1, Ordering::Relaxed);
    if !c.is_multiple_of(n) {
        return SpanGuard { name, pending: None, end_attrs: Vec::new(), armed: false };
    }
    let guard = SpanGuard { name, pending: Some(Vec::new()), end_attrs: Vec::new(), armed: true };
    guard.attr("sample_weight", AttrValue::F64(n as f64))
}

/// Publishes an instant event on the host track. Inert unless the level
/// is `Events` or `Full`.
#[inline]
pub fn instant(name: &'static str, attrs: Vec<Attr>) {
    if !events_enabled() {
        return;
    }
    sink::publish(name, EventKind::Instant, Track::Host, sink::now_ns(), attrs);
}

/// Publishes a complete slice on the **device** track: `start_s` and
/// `dur_s` are read off the simulated device clock, not the host clock.
/// Inert unless the level is `Full`.
#[inline]
pub fn device_complete(name: &'static str, start_s: f64, dur_s: f64, attrs: Vec<Attr>) {
    if !spans_enabled() {
        return;
    }
    let ts_ns = (start_s * 1e9).max(0.0) as u64;
    let dur_ns = (dur_s * 1e9).max(0.0) as u64;
    sink::publish(name, EventKind::Complete { dur_ns }, Track::Device, ts_ns, attrs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{with_level, TelemetryLevel};
    use crate::sink::drain;

    #[test]
    fn span_emits_nested_begin_end_pairs() {
        with_level(TelemetryLevel::Full, || {
            crate::sink::clear();
            {
                let _outer = span("span_test_outer").attr("i", AttrValue::U64(1)).enter();
                let _inner = span("span_test_inner").enter();
            }
            let evs: Vec<_> =
                drain().into_iter().filter(|e| e.name.starts_with("span_test_")).collect();
            assert_eq!(evs.len(), 4);
            assert_eq!(evs[0].name, "span_test_outer");
            assert_eq!(evs[0].kind, EventKind::SpanBegin);
            assert_eq!(evs[0].attr("i"), Some(&AttrValue::U64(1)));
            assert_eq!(evs[1].name, "span_test_inner");
            // Inner ends before outer.
            assert_eq!(evs[2].name, "span_test_inner");
            assert_eq!(evs[2].kind, EventKind::SpanEnd);
            assert_eq!(evs[3].name, "span_test_outer");
            assert!(evs[0].ts_ns <= evs[1].ts_ns && evs[2].ts_ns <= evs[3].ts_ns);
        });
    }

    #[test]
    fn disabled_span_publishes_nothing() {
        with_level(TelemetryLevel::Events, || {
            crate::sink::clear();
            let _g = span("span_test_disabled").attr("x", AttrValue::U64(9)).enter();
            drop(_g);
            assert!(drain().iter().all(|e| e.name != "span_test_disabled"));
        });
    }

    #[test]
    fn instant_respects_events_level() {
        with_level(TelemetryLevel::Off, || {
            crate::sink::clear();
            instant("span_test_instant", vec![]);
            assert!(drain().iter().all(|e| e.name != "span_test_instant"));
        });
        with_level(TelemetryLevel::Events, || {
            instant("span_test_instant", vec![]);
            let evs = drain();
            assert!(evs.iter().any(|e| e.name == "span_test_instant"));
        });
    }

    #[test]
    fn sampled_span_records_one_in_n_with_weight() {
        with_level(TelemetryLevel::Events, || {
            crate::sink::clear();
            let saved = sample_interval();
            set_sample_interval(4);
            reset_sample_counter();
            for _ in 0..16 {
                let _g = sampled_span("span_test_sampled").enter();
            }
            set_sample_interval(saved);
            let begins: Vec<_> = drain()
                .into_iter()
                .filter(|e| e.name == "span_test_sampled" && e.kind == EventKind::SpanBegin)
                .collect();
            assert_eq!(begins.len(), 4, "16 calls at 1-in-4 -> 4 spans");
            for b in &begins {
                assert_eq!(b.attr("sample_weight"), Some(&AttrValue::F64(4.0)), "{b:?}");
            }
        });
    }

    #[test]
    fn sampled_span_is_unsampled_at_full() {
        with_level(TelemetryLevel::Full, || {
            crate::sink::clear();
            reset_sample_counter();
            for _ in 0..6 {
                let _g = sampled_span("span_test_full_sampled").enter();
            }
            let evs: Vec<_> = drain()
                .into_iter()
                .filter(|e| e.name == "span_test_full_sampled")
                .collect();
            assert_eq!(evs.len(), 12, "every call span recorded at full");
            assert!(
                evs.iter().all(|e| e.attr("sample_weight").is_none()),
                "no weight attr at full level"
            );
        });
    }

    #[test]
    fn sampled_span_inert_when_off() {
        with_level(TelemetryLevel::Off, || {
            crate::sink::clear();
            let _g = sampled_span("span_test_sampled_off").enter();
            drop(_g);
            assert!(drain().iter().all(|e| e.name != "span_test_sampled_off"));
        });
    }

    #[test]
    fn device_complete_lands_on_device_track() {
        with_level(TelemetryLevel::Full, || {
            crate::sink::clear();
            device_complete("span_test_kernel", 1.5, 0.25, vec![]);
            let ev = drain().into_iter().find(|e| e.name == "span_test_kernel").unwrap();
            assert_eq!(ev.track, Track::Device);
            assert_eq!(ev.ts_ns, 1_500_000_000);
            assert_eq!(ev.kind, EventKind::Complete { dur_ns: 250_000_000 });
        });
    }
}

//! Process-global telemetry level, mirroring the `MKL_VERBOSE` /
//! `MKL_BLAS_COMPUTE_MODE` conventions of `mkl-lite`: lazy environment
//! initialisation, a runtime setter that overrides the environment, and
//! a scoped override for in-process sweeps and tests.

use crate::TELEMETRY_ENV;
use parking_lot::{Mutex, ReentrantMutex};
use std::sync::atomic::{AtomicU8, Ordering};

/// How much the telemetry layer records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TelemetryLevel {
    /// Nothing is recorded. Every instrumentation point reduces to one
    /// relaxed atomic load.
    Off = 0,
    /// Discrete events (escalations, health violations, checkpoints) and
    /// metrics are recorded; high-frequency spans are skipped.
    Events = 1,
    /// Everything: events, metrics, per-call BLAS spans, QD sub-phase
    /// spans, and the simulated device kernel timeline.
    Full = 2,
}

impl TelemetryLevel {
    /// Parses an environment value. Accepts `off`/`0`, `events`/`1`,
    /// `full`/`2` (case-insensitive).
    pub fn from_env_value(s: &str) -> Option<TelemetryLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(TelemetryLevel::Off),
            "events" | "1" => Some(TelemetryLevel::Events),
            "full" | "2" => Some(TelemetryLevel::Full),
            _ => None,
        }
    }

    /// The environment value that selects this level.
    pub fn env_value(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Events => "events",
            TelemetryLevel::Full => "full",
        }
    }
}

/// Sentinel meaning "not yet initialised from the environment".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);
static INIT_LOCK: Mutex<()> = Mutex::new(());
/// Serialises scoped overrides (reentrant so overrides may nest).
static OVERRIDE_LOCK: ReentrantMutex<()> = ReentrantMutex::new(());

fn from_u8(v: u8) -> TelemetryLevel {
    match v {
        1 => TelemetryLevel::Events,
        2 => TelemetryLevel::Full,
        _ => TelemetryLevel::Off,
    }
}

/// Returns the current level, initialising from `TELEMETRY` on first
/// use. An unrecognised environment value falls back to `Off` with a
/// warning — telemetry must never abort a physics run.
pub fn level() -> TelemetryLevel {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != LEVEL_UNSET {
        return from_u8(v);
    }
    let _g = INIT_LOCK.lock();
    let v = LEVEL.load(Ordering::Relaxed);
    if v != LEVEL_UNSET {
        return from_u8(v);
    }
    let lvl = match std::env::var(TELEMETRY_ENV) {
        Ok(s) => TelemetryLevel::from_env_value(&s).unwrap_or_else(|| {
            eprintln!("warning: unrecognised {TELEMETRY_ENV}={s:?}; telemetry stays off");
            TelemetryLevel::Off
        }),
        Err(_) => TelemetryLevel::Off,
    };
    LEVEL.store(lvl as u8, Ordering::Relaxed);
    lvl
}

/// Sets the global level (overrides the environment).
pub fn set_level(lvl: TelemetryLevel) {
    LEVEL.store(lvl as u8, Ordering::Relaxed);
}

/// Runs `f` with the level temporarily set to `lvl`, restoring the
/// previous level afterwards (also on panic). Overrides are serialised
/// process-wide; nested overrides from the same thread are fine.
pub fn with_level<R>(lvl: TelemetryLevel, f: impl FnOnce() -> R) -> R {
    let _guard = OVERRIDE_LOCK.lock();
    let previous = level();
    set_level(lvl);
    struct Restore(TelemetryLevel);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_level(self.0);
        }
    }
    let _restore = Restore(previous);
    f()
}

/// True when discrete events and metrics should be recorded
/// (`Events` or `Full`). The hot-path check: one relaxed load.
#[inline]
pub fn events_enabled() -> bool {
    let v = LEVEL.load(Ordering::Relaxed);
    if v == LEVEL_UNSET {
        return level() >= TelemetryLevel::Events;
    }
    v >= TelemetryLevel::Events as u8
}

/// True when high-frequency spans (per-BLAS-call, per-QD-sub-phase) and
/// the device kernel timeline should be recorded (`Full` only).
#[inline]
pub fn spans_enabled() -> bool {
    let v = LEVEL.load(Ordering::Relaxed);
    if v == LEVEL_UNSET {
        return level() == TelemetryLevel::Full;
    }
    v == TelemetryLevel::Full as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_values_parse() {
        assert_eq!(TelemetryLevel::from_env_value("off"), Some(TelemetryLevel::Off));
        assert_eq!(TelemetryLevel::from_env_value("EVENTS"), Some(TelemetryLevel::Events));
        assert_eq!(TelemetryLevel::from_env_value("full"), Some(TelemetryLevel::Full));
        assert_eq!(TelemetryLevel::from_env_value("2"), Some(TelemetryLevel::Full));
        assert_eq!(TelemetryLevel::from_env_value("banana"), None);
    }

    #[test]
    fn scoped_override_restores() {
        with_level(TelemetryLevel::Off, || {
            assert!(!events_enabled() && !spans_enabled());
            with_level(TelemetryLevel::Events, || {
                assert!(events_enabled() && !spans_enabled());
                with_level(TelemetryLevel::Full, || {
                    assert!(events_enabled() && spans_enabled());
                });
                assert_eq!(level(), TelemetryLevel::Events);
            });
            assert_eq!(level(), TelemetryLevel::Off);
        });
    }

    #[test]
    fn scoped_override_restores_on_panic() {
        with_level(TelemetryLevel::Off, || {
            let r = std::panic::catch_unwind(|| {
                with_level(TelemetryLevel::Full, || panic!("boom"))
            });
            assert!(r.is_err());
            assert_eq!(level(), TelemetryLevel::Off);
        });
    }
}

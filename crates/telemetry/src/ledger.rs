//! The accuracy/cost ledger: streaming per-(callsite, shape-class, mode)
//! statistics folding every signal the future precision autotuner needs.
//!
//! Producers feed the ledger directly on the hot path (one mutex-guarded
//! `BTreeMap` update per BLAS call, only when `TELEMETRY != off`):
//!
//! * `mkl_lite::logged` — call counts, wall seconds, modelled device
//!   seconds (→ observed-vs-model time misfit).
//! * `mkl_lite::abft` — row-checksum residual ratios (defect/bound) into
//!   a log₁₀-decade histogram, plus violation counts.
//! * the GEMM wrappers — non-finite output detections, which also mark
//!   the callsite as the *suspect* for the next rollback/escalation.
//! * the supervisor — rollbacks, escalations (attributed to the suspect
//!   callsite when one is pending), health violations, and the SCF
//!   defect trend.
//!
//! Consumers: [`ledger_json`] (the `ledger.json` artifact, schema
//! version 2, documented in DESIGN.md), [`prometheus_text`] (labelled
//! gauge/counter series), and the shared plain-text renderer
//! [`render_rows`] reused by `profile watch` for its live dashboard.
//!
//! Since schema v2 the document is **self-describing**: a `meta` header
//! ([`LedgerMeta`]) stamps the deck hash, fleet rank count, telemetry
//! level, sampling period and row count into the artifact, so an
//! archived run needs no side-channel context. [`parse_ledger`] reads
//! both v2 and headerless v1 documents back into [`Row`]s — the
//! round-trip the cross-run archive (`profile archive`) is built on.
//!
//! Keys intern through [`crate::callsite`], so steady-state recording
//! allocates nothing per call beyond the map probe.

use crate::callsite::intern;
use crate::json;
use crate::metrics::escape_label_value;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of log₁₀ decade buckets in a [`ResidualHist`]: upper bounds
/// 1e-12, 1e-11, …, 1e4 (everything above — or NaN — lands in +Inf).
pub const RESIDUAL_DECADES: usize = 17;

const RESIDUAL_MIN_EXP: i32 = -12;

/// Upper-bound label for residual bucket `i` (`"1e-12"` … `"1e4"`,
/// then `"+Inf"`).
pub fn residual_bucket_label(i: usize) -> String {
    if i >= RESIDUAL_DECADES {
        "+Inf".to_string()
    } else {
        format!("1e{}", RESIDUAL_MIN_EXP + i as i32)
    }
}

fn residual_bucket_index(v: f64) -> usize {
    if v.is_nan() || v.is_infinite() {
        return RESIDUAL_DECADES;
    }
    for i in 0..RESIDUAL_DECADES {
        if v <= 10f64.powi(RESIDUAL_MIN_EXP + i as i32) {
            return i;
        }
    }
    RESIDUAL_DECADES
}

/// A fixed-size log₁₀-decade histogram of dimensionless residual ratios
/// (ABFT defect/bound, SCF defect). NaN and +Inf observations land in
/// the overflow bucket, so a poisoned residual is never silently lost.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResidualHist {
    /// Total observations.
    pub count: u64,
    /// Largest finite observation (0 when none).
    pub max: f64,
    /// Per-decade counts, index `RESIDUAL_DECADES` = overflow/+Inf.
    pub buckets: [u64; RESIDUAL_DECADES + 1],
}

impl ResidualHist {
    /// Records one ratio.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.buckets[residual_bucket_index(v)] += 1;
        if v.is_finite() && v > self.max {
            self.max = v;
        }
    }

    /// Non-empty `(bucket_label, count)` pairs in ascending order.
    pub fn nonzero_buckets(&self) -> Vec<(String, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (residual_bucket_label(i), n))
            .collect()
    }

    /// Folds another histogram into this one (watch-side rank merging).
    pub fn merge(&mut self, other: &ResidualHist) {
        self.count += other.count;
        if other.max > self.max {
            self.max = other.max;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

/// Ledger key: who called, at what shape class, in which mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Interned callsite ID (`"{phase}/{routine}"`).
    pub callsite: &'static str,
    /// Interned shape class (`"128x1024x262144"`, pow2-ceiling per dim;
    /// `"-"` for shapeless entries like supervisor rows).
    pub shape: &'static str,
    /// Interned compute-mode label (`"STANDARD"`, `"FLOAT_TO_BF16"`, …).
    pub mode: &'static str,
}

/// Streaming statistics accumulated under one [`Key`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stats {
    /// BLAS calls recorded (un-sampled: every call counts).
    pub calls: u64,
    /// Total host wall seconds across those calls.
    pub wall_s: f64,
    /// Total modelled device seconds (when the device model ran).
    pub device_s: f64,
    /// Calls that carried a device-model prediction.
    pub device_samples: u64,
    /// Precision escalations attributed to this key.
    pub escalations: u64,
    /// Burst rollbacks attributed to this key.
    pub rollbacks: u64,
    /// Supervisor health violations attributed to this key.
    pub health_violations: u64,
    /// Non-finite GEMM outputs detected at this key.
    pub nonfinite_outputs: u64,
    /// ABFT row-checksum verifications performed.
    pub abft_checks: u64,
    /// ABFT verifications that exceeded the error bound.
    pub abft_violations: u64,
    /// Residual-ratio histogram (ABFT defect/bound, or SCF defect for
    /// the `supervisor/scf` row).
    pub residuals: ResidualHist,
}

impl Stats {
    /// Observed-vs-device-model time misfit: wall ÷ modelled seconds.
    /// `None` when no device-model sample exists.
    pub fn time_misfit(&self) -> Option<f64> {
        if self.device_samples > 0 && self.device_s > 0.0 {
            Some(self.wall_s / self.device_s)
        } else {
            None
        }
    }

    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &Stats) {
        self.calls += other.calls;
        self.wall_s += other.wall_s;
        self.device_s += other.device_s;
        self.device_samples += other.device_samples;
        self.escalations += other.escalations;
        self.rollbacks += other.rollbacks;
        self.health_violations += other.health_violations;
        self.nonfinite_outputs += other.nonfinite_outputs;
        self.abft_checks += other.abft_checks;
        self.abft_violations += other.abft_violations;
        self.residuals.merge(&other.residuals);
    }
}

/// One exported ledger row: a [`Key`] plus its [`Stats`]. The same
/// shape is built by `profile watch` from ingested event streams, so
/// both sides share the JSON/Prometheus/dashboard renderers below.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Callsite ID.
    pub callsite: String,
    /// Shape class.
    pub shape: String,
    /// Compute-mode label.
    pub mode: String,
    /// Accumulated statistics.
    pub stats: Stats,
}

static LEDGER: Mutex<BTreeMap<Key, Stats>> = Mutex::new(BTreeMap::new());
static SUSPECT: Mutex<Option<Key>> = Mutex::new(None);
static RUN_META: Mutex<(Option<String>, Option<u64>)> = Mutex::new((None, None));

/// The self-describing header of a schema-v2 `ledger.json` document.
/// Every field an archived run would otherwise need side-channel
/// context for: which deck produced it, how many ranks contributed,
/// and how the telemetry layer was configured when it recorded.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerMeta {
    /// Schema version of the parsed document (1 for headerless legacy
    /// documents, [`LEDGER_SCHEMA_VERSION`] for current ones).
    pub version: u64,
    /// FNV-1a/64 hash of the canonical deck text as `"0x{:016x}"`, or
    /// `"-"` when the producer never stamped one (legacy v1, tests).
    pub deck_hash: String,
    /// Ranks contributing to the document (1 for single-process runs).
    pub ranks: u64,
    /// Telemetry level the run recorded at (`"off"`/`"events"`/`"full"`).
    pub telemetry_level: String,
    /// Span sampling interval (1 = every BLAS call; ledger counts are
    /// un-sampled either way, this documents the span stream next door).
    pub sample_period: u64,
    /// Number of ledger rows in the document.
    pub rows: u64,
}

impl Default for LedgerMeta {
    fn default() -> Self {
        LedgerMeta {
            version: 1,
            deck_hash: "-".to_string(),
            ranks: 1,
            telemetry_level: "-".to_string(),
            sample_period: 1,
            rows: 0,
        }
    }
}

/// Stamps the deck hash (`"0x{:016x}"` form) the next exported ledger
/// header will carry. The supervisor calls this at run start.
pub fn set_deck_hash(hash: &str) {
    RUN_META.lock().unwrap().0 = Some(hash.to_string());
}

/// Stamps the fleet rank count for the exported header. Shard workers
/// call this after reading the manifest; single-process runs leave the
/// default of 1.
pub fn set_rank_count(ranks: u64) {
    RUN_META.lock().unwrap().1 = Some(ranks);
}

/// The header the live ledger would export right now: the stamped
/// deck hash / rank count plus the current telemetry level and span
/// sampling interval, with `rows` set to `row_count`.
pub fn current_meta(row_count: u64) -> LedgerMeta {
    let (hash, ranks) = RUN_META.lock().unwrap().clone();
    LedgerMeta {
        version: LEDGER_SCHEMA_VERSION,
        deck_hash: hash.unwrap_or_else(|| "-".to_string()),
        ranks: ranks.unwrap_or(1),
        telemetry_level: crate::level::level().env_value().to_string(),
        sample_period: crate::span::sample_interval(),
        rows: row_count,
    }
}

/// Pow2-ceiling shape class for a GEMM problem, e.g. `(100, 1000,
/// 250000)` → `"128x1024x262144"`. Bucketing keeps the ledger bounded
/// across jittering dimensions while preserving the cost class.
pub fn shape_class(m: usize, n: usize, k: usize) -> &'static str {
    fn ceil2(v: usize) -> usize {
        v.max(1).next_power_of_two()
    }
    intern(&format!("{}x{}x{}", ceil2(m), ceil2(n), ceil2(k)))
}

const SHAPELESS: &str = "-";

fn key(callsite: &'static str, shape: &'static str, mode: &str) -> Key {
    Key { callsite, shape, mode: intern(mode) }
}

fn with_stats(k: Key, f: impl FnOnce(&mut Stats)) {
    let mut ledger = LEDGER.lock().unwrap();
    f(ledger.entry(k).or_default());
}

/// Records one BLAS call: wall time and (when available) the modelled
/// device time. Called from `mkl_lite::logged` for *every* call when
/// telemetry is on — streaming statistics, not sampled.
pub fn record_call(
    callsite: &'static str,
    m: usize,
    n: usize,
    k: usize,
    mode: &str,
    wall_s: f64,
    device_s: Option<f64>,
) {
    with_stats(key(callsite, shape_class(m, n, k), mode), |s| {
        s.calls += 1;
        s.wall_s += wall_s;
        if let Some(d) = device_s {
            s.device_s += d;
            s.device_samples += 1;
        }
    });
}

/// Records one ABFT row-checksum verification and its worst
/// defect/bound ratio across the checked rows.
pub fn record_abft_check(
    callsite: &'static str,
    m: usize,
    n: usize,
    k: usize,
    mode: &str,
    max_ratio: f64,
) {
    with_stats(key(callsite, shape_class(m, n, k), mode), |s| {
        s.abft_checks += 1;
        s.residuals.observe(max_ratio);
    });
}

/// Records an ABFT violation (bound exceeded) and marks this key as the
/// suspect for the next rollback/escalation.
pub fn record_abft_violation(
    callsite: &'static str,
    m: usize,
    n: usize,
    k: usize,
    mode: &str,
    max_ratio: f64,
) {
    let k = key(callsite, shape_class(m, n, k), mode);
    with_stats(k, |s| {
        s.abft_violations += 1;
        s.residuals.observe(max_ratio);
    });
    *SUSPECT.lock().unwrap() = Some(k);
}

/// Records a non-finite GEMM output detected at a callsite, and marks
/// it as the suspect for the next rollback/escalation.
pub fn record_nonfinite_output(
    callsite: &'static str,
    m: usize,
    n: usize,
    k: usize,
    mode: &str,
) {
    let k = key(callsite, shape_class(m, n, k), mode);
    with_stats(k, |s| s.nonfinite_outputs += 1);
    *SUSPECT.lock().unwrap() = Some(k);
}

fn supervisor_key(site: &str, mode: &str) -> Key {
    key(intern(site), intern(SHAPELESS), mode)
}

/// Records a burst rollback. Attributed to the pending suspect callsite
/// when one exists (the suspect is *kept* — the escalation decision
/// follows the rollback), else to `supervisor/burst`.
pub fn record_rollback(mode: &str) {
    let k = SUSPECT
        .lock()
        .unwrap()
        .unwrap_or_else(|| supervisor_key("supervisor/burst", mode));
    with_stats(k, |s| s.rollbacks += 1);
}

/// Records a precision escalation `from` → `to`, consuming the pending
/// suspect callsite when one exists (else `supervisor/burst` under the
/// `from` mode).
pub fn record_escalation(from_mode: &str, _to_mode: &str) {
    let k = SUSPECT
        .lock()
        .unwrap()
        .take()
        .unwrap_or_else(|| supervisor_key("supervisor/burst", from_mode));
    with_stats(k, |s| s.escalations += 1);
}

/// Records a supervisor health violation. Attributed to the pending
/// suspect when one exists, else to `supervisor/{kind}`.
pub fn record_health_violation(kind: &str, mode: &str) {
    let k = SUSPECT.lock().unwrap().unwrap_or_else(|| {
        supervisor_key(&format!("supervisor/{}", kind.to_lowercase()), mode)
    });
    with_stats(k, |s| s.health_violations += 1);
}

/// Records one committed-burst SCF defect under the `supervisor/scf`
/// row — the accuracy trend the autotuner will read.
pub fn record_scf_defect(mode: &str, defect: f64) {
    with_stats(supervisor_key("supervisor/scf", mode), |s| {
        s.residuals.observe(defect);
    });
}

/// Clears all ledger state including the pending suspect and the
/// stamped run metadata (tests, per-run harnesses).
pub fn clear() {
    LEDGER.lock().unwrap().clear();
    *SUSPECT.lock().unwrap() = None;
    *RUN_META.lock().unwrap() = (None, None);
}

/// Snapshot of every row, sorted by (callsite, shape, mode).
pub fn snapshot() -> Vec<Row> {
    LEDGER
        .lock()
        .unwrap()
        .iter()
        .map(|(k, s)| Row {
            callsite: k.callsite.to_string(),
            shape: k.shape.to_string(),
            mode: k.mode.to_string(),
            stats: s.clone(),
        })
        .collect()
}

/// Current ledger schema version (see DESIGN.md "Observability").
/// v2 added the self-describing `meta` header; v1 documents (entries
/// only) are still readable through [`parse_ledger`].
pub const LEDGER_SCHEMA_VERSION: u64 = 2;

/// Renders one row as its compact `ledger.json` entry object. The same
/// fragment is embedded verbatim in the cross-run archive's
/// `runs.jsonl`, so both artifacts share one row schema.
pub fn row_json(r: &Row) -> String {
    let mut out = String::from("{");
    let s = &r.stats;
    out.push_str(&format!(
        "\"callsite\":{},\"shape\":{},\"mode\":{},",
        json::escape_string(&r.callsite),
        json::escape_string(&r.shape),
        json::escape_string(&r.mode)
    ));
    out.push_str(&format!(
        "\"calls\":{},\"wall_s\":{},\"device_s\":{},\"device_samples\":{},",
        s.calls,
        json::number(s.wall_s),
        json::number(s.device_s),
        s.device_samples
    ));
    let misfit = match s.time_misfit() {
        Some(m) => json::number(m),
        None => "null".to_string(),
    };
    out.push_str(&format!("\"time_misfit\":{misfit},"));
    out.push_str(&format!(
        "\"escalations\":{},\"rollbacks\":{},\"health_violations\":{},\
         \"nonfinite_outputs\":{},\"abft_checks\":{},\"abft_violations\":{},",
        s.escalations,
        s.rollbacks,
        s.health_violations,
        s.nonfinite_outputs,
        s.abft_checks,
        s.abft_violations
    ));
    out.push_str(&format!(
        "\"residuals\":{{\"count\":{},\"max\":{},\"buckets\":[",
        s.residuals.count,
        json::number(s.residuals.max)
    ));
    for (j, (le, n)) in s.residuals.nonzero_buckets().iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{},{}]", json::escape_string(le), n));
    }
    out.push_str("]}}");
    out
}

/// Renders the `meta` header object of a schema-v2 document.
pub fn meta_json(meta: &LedgerMeta) -> String {
    format!(
        "{{\"deck_hash\":{},\"ranks\":{},\"telemetry_level\":{},\
         \"sample_period\":{},\"rows\":{}}}",
        json::escape_string(&meta.deck_hash),
        meta.ranks,
        json::escape_string(&meta.telemetry_level),
        meta.sample_period,
        meta.rows
    )
}

/// Renders rows under an explicit header as the `ledger.json`
/// document: `{"version": 2, "meta": {...}, "entries": [...]}`.
pub fn rows_json_with_meta(meta: &LedgerMeta, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"version\": {LEDGER_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"meta\": {},\n", meta_json(meta)));
    out.push_str("  \"entries\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&row_json(r));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders rows as the `ledger.json` document under the live run's
/// metadata header (see [`current_meta`]).
pub fn rows_json(rows: &[Row]) -> String {
    rows_json_with_meta(&current_meta(rows.len() as u64), rows)
}

/// Parses one entry object back into a [`Row`]. The derived
/// `time_misfit` field is ignored (it is recomputed from the parsed
/// stats); unknown fields are ignored for forward tolerance.
pub fn parse_row(e: &json::JsonValue) -> Result<Row, String> {
    let str_field = |f: &str| -> Result<String, String> {
        e.get(f)
            .and_then(json::JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("entry missing string field {f:?}"))
    };
    let num = |f: &str| e.get(f).and_then(json::JsonValue::as_f64).unwrap_or(0.0);
    let mut residuals = ResidualHist::default();
    if let Some(res) = e.get("residuals") {
        residuals.count = res.get("count").and_then(json::JsonValue::as_f64).unwrap_or(0.0) as u64;
        residuals.max = res.get("max").and_then(json::JsonValue::as_f64).unwrap_or(0.0);
        for pair in res.get("buckets").and_then(json::JsonValue::as_array).unwrap_or(&[]) {
            let items = pair.as_array().unwrap_or(&[]);
            let (Some(label), Some(count)) = (
                items.first().and_then(json::JsonValue::as_str),
                items.get(1).and_then(json::JsonValue::as_f64),
            ) else {
                return Err("residual bucket is not a [label, count] pair".to_string());
            };
            let idx = (0..=RESIDUAL_DECADES)
                .find(|&i| residual_bucket_label(i) == label)
                .ok_or_else(|| format!("unknown residual bucket label {label:?}"))?;
            residuals.buckets[idx] = count as u64;
        }
    }
    Ok(Row {
        callsite: str_field("callsite")?,
        shape: str_field("shape")?,
        mode: str_field("mode")?,
        stats: Stats {
            calls: num("calls") as u64,
            wall_s: num("wall_s"),
            device_s: num("device_s"),
            device_samples: num("device_samples") as u64,
            escalations: num("escalations") as u64,
            rollbacks: num("rollbacks") as u64,
            health_violations: num("health_violations") as u64,
            nonfinite_outputs: num("nonfinite_outputs") as u64,
            abft_checks: num("abft_checks") as u64,
            abft_violations: num("abft_violations") as u64,
            residuals,
        },
    })
}

/// Parses a `ledger.json` document — current schema v2 or headerless
/// legacy v1 — back into its header and rows. A v1 document gets a
/// default header (`deck_hash`/`telemetry_level` `"-"`, 1 rank) with
/// `rows` filled from the entry count, so archive consumers handle
/// both generations uniformly. Versions newer than
/// [`LEDGER_SCHEMA_VERSION`] are an error: the caller should warn and
/// skip rather than misread fields it does not understand.
pub fn parse_ledger(text: &str) -> Result<(LedgerMeta, Vec<Row>), String> {
    let doc = json::parse(text).map_err(|e| format!("ledger does not parse: {e}"))?;
    let version = doc
        .get("version")
        .and_then(json::JsonValue::as_f64)
        .ok_or_else(|| "ledger has no version".to_string())? as u64;
    if version > LEDGER_SCHEMA_VERSION {
        return Err(format!(
            "ledger schema v{version} is newer than supported v{LEDGER_SCHEMA_VERSION}"
        ));
    }
    let entries = doc
        .get("entries")
        .and_then(json::JsonValue::as_array)
        .ok_or_else(|| "ledger has no entries array".to_string())?;
    let rows: Vec<Row> = entries.iter().map(parse_row).collect::<Result<_, _>>()?;
    let mut meta = LedgerMeta { version, rows: rows.len() as u64, ..LedgerMeta::default() };
    if let Some(m) = doc.get("meta") {
        let s = |f: &str| m.get(f).and_then(json::JsonValue::as_str).map(str::to_string);
        let n = |f: &str| m.get(f).and_then(json::JsonValue::as_f64);
        if let Some(h) = s("deck_hash") {
            meta.deck_hash = h;
        }
        if let Some(r) = n("ranks") {
            meta.ranks = r as u64;
        }
        if let Some(l) = s("telemetry_level") {
            meta.telemetry_level = l;
        }
        if let Some(p) = n("sample_period") {
            meta.sample_period = p as u64;
        }
    }
    Ok((meta, rows))
}

/// Merges ledger rows from several sources (per-rank documents, or the
/// same run re-read) into one sorted row set keyed by (callsite, shape,
/// mode). Merging goes through the commutative [`Stats::merge`] /
/// [`ResidualHist::merge`] folds over a sorted map, so the result is
/// **bit-identical under any permutation of the sources** — the same
/// guarantee the cross-rank observable merge gives (PR 8), now for the
/// observability plane.
pub fn merge_rows(sources: &[Vec<Row>]) -> Vec<Row> {
    let mut merged: BTreeMap<(String, String, String), Stats> = BTreeMap::new();
    for rows in sources {
        for r in rows {
            merged
                .entry((r.callsite.clone(), r.shape.clone(), r.mode.clone()))
                .or_default()
                .merge(&r.stats);
        }
    }
    merged
        .into_iter()
        .map(|((callsite, shape, mode), stats)| Row { callsite, shape, mode, stats })
        .collect()
}

/// Renders rows as Prometheus text: labelled counter/gauge families
/// keyed by `callsite`/`shape`/`mode`, label values escaped via
/// [`escape_label_value`].
pub fn rows_prometheus(rows: &[Row]) -> String {
    fn labels(r: &Row) -> String {
        format!(
            "{{callsite=\"{}\",shape=\"{}\",mode=\"{}\"}}",
            escape_label_value(&r.callsite),
            escape_label_value(&r.shape),
            escape_label_value(&r.mode)
        )
    }
    struct Family {
        name: &'static str,
        kind: &'static str,
        help: &'static str,
        get: fn(&Stats) -> Option<f64>,
    }
    let families = [
        Family {
            name: "dcmesh_ledger_calls_total",
            kind: "counter",
            help: "BLAS calls recorded per (callsite, shape, mode)",
            get: |s| Some(s.calls as f64),
        },
        Family {
            name: "dcmesh_ledger_wall_seconds_total",
            kind: "counter",
            help: "host wall seconds per (callsite, shape, mode)",
            get: |s| Some(s.wall_s),
        },
        Family {
            name: "dcmesh_ledger_device_seconds_total",
            kind: "counter",
            help: "modelled device seconds per (callsite, shape, mode)",
            get: |s| (s.device_samples > 0).then_some(s.device_s),
        },
        Family {
            name: "dcmesh_ledger_time_misfit_ratio",
            kind: "gauge",
            help: "observed wall / modelled device seconds",
            get: |s| s.time_misfit(),
        },
        Family {
            name: "dcmesh_ledger_escalations_total",
            kind: "counter",
            help: "precision escalations attributed to the key",
            get: |s| Some(s.escalations as f64),
        },
        Family {
            name: "dcmesh_ledger_rollbacks_total",
            kind: "counter",
            help: "burst rollbacks attributed to the key",
            get: |s| Some(s.rollbacks as f64),
        },
        Family {
            name: "dcmesh_ledger_health_violations_total",
            kind: "counter",
            help: "supervisor health violations attributed to the key",
            get: |s| Some(s.health_violations as f64),
        },
        Family {
            name: "dcmesh_ledger_nonfinite_outputs_total",
            kind: "counter",
            help: "non-finite GEMM outputs detected at the key",
            get: |s| Some(s.nonfinite_outputs as f64),
        },
        Family {
            name: "dcmesh_ledger_abft_checks_total",
            kind: "counter",
            help: "ABFT row-checksum verifications",
            get: |s| Some(s.abft_checks as f64),
        },
        Family {
            name: "dcmesh_ledger_abft_violations_total",
            kind: "counter",
            help: "ABFT verifications exceeding the error bound",
            get: |s| Some(s.abft_violations as f64),
        },
        Family {
            name: "dcmesh_ledger_residual_max",
            kind: "gauge",
            help: "largest finite residual ratio observed",
            get: |s| (s.residuals.count > 0).then_some(s.residuals.max),
        },
    ];
    let mut out = String::new();
    for fam in &families {
        let mut lines = Vec::new();
        for r in rows {
            if let Some(v) = (fam.get)(&r.stats) {
                lines.push(format!("{}{} {}\n", fam.name, labels(r), v));
            }
        }
        if lines.is_empty() {
            continue;
        }
        out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
        out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind));
        for l in lines {
            out.push_str(&l);
        }
    }
    out
}

/// Renders rows as the fixed-width plain-text table shared by
/// `ledger.json` printouts and the `profile watch` dashboard.
pub fn render_rows(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>20} {:<14} {:>8} {:>10} {:>7} {:>4} {:>4} {:>5} {:>5} {:>7} {:>9}\n",
        "CALLSITE",
        "SHAPE",
        "MODE",
        "CALLS",
        "WALL_S",
        "MISFIT",
        "ESC",
        "RB",
        "ABFT",
        "VIOL",
        "NONFIN",
        "RES_MAX"
    ));
    for r in rows {
        let s = &r.stats;
        let misfit = match s.time_misfit() {
            Some(m) => format!("{m:.2}"),
            None => "-".to_string(),
        };
        let res_max =
            if s.residuals.count > 0 { format!("{:.2e}", s.residuals.max) } else { "-".into() };
        out.push_str(&format!(
            "{:<34} {:>20} {:<14} {:>8} {:>10.4} {:>7} {:>4} {:>4} {:>5} {:>5} {:>7} {:>9}\n",
            r.callsite,
            r.shape,
            r.mode,
            s.calls,
            s.wall_s,
            misfit,
            s.escalations,
            s.rollbacks,
            s.abft_checks,
            s.abft_violations,
            s.nonfinite_outputs,
            res_max
        ));
    }
    out
}

/// The live ledger as `ledger.json` text.
pub fn ledger_json() -> String {
    rows_json(&snapshot())
}

/// The live ledger as Prometheus text.
pub fn prometheus_text() -> String {
    rows_prometheus(&snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ledger is global state shared across parallel tests; every
    // test uses unique callsite names and asserts only on its own rows.

    fn row<'a>(rows: &'a [Row], cs: &str) -> &'a Row {
        rows.iter().find(|r| r.callsite == cs).expect("row present")
    }

    #[test]
    fn shape_class_buckets_pow2() {
        assert_eq!(shape_class(128, 896, 262144), "128x1024x262144");
        assert_eq!(shape_class(100, 1000, 250000), "128x1024x262144");
        assert_eq!(shape_class(1, 1, 1), "1x1x1");
        assert_eq!(shape_class(0, 3, 5), "1x4x8");
    }

    #[test]
    fn residual_hist_buckets_decades() {
        let mut h = ResidualHist::default();
        h.observe(5e-13); // <= 1e-12
        h.observe(0.5); // <= 1e0
        h.observe(f64::NAN); // overflow
        h.observe(1e9); // overflow
        assert_eq!(h.count, 4);
        assert_eq!(h.max, 1e9);
        let nz = h.nonzero_buckets();
        assert_eq!(
            nz,
            vec![("1e-12".into(), 1), ("1e0".into(), 1), ("+Inf".into(), 2)]
        );
    }

    #[test]
    fn calls_accumulate_and_misfit_computes() {
        let cs = intern("ledger_test::calls/sgemm");
        record_call(cs, 128, 896, 4096, "STANDARD", 0.5, Some(0.25));
        record_call(cs, 128, 896, 4096, "STANDARD", 0.5, Some(0.25));
        record_call(cs, 128, 896, 4096, "STANDARD", 0.25, None);
        let rows = snapshot();
        let r = row(&rows, cs);
        assert_eq!(r.stats.calls, 3);
        assert_eq!(r.stats.device_samples, 2);
        assert!((r.stats.wall_s - 1.25).abs() < 1e-12);
        assert_eq!(r.stats.time_misfit(), Some(2.5));
        assert_eq!(r.shape, "128x1024x4096");
    }

    #[test]
    fn suspect_flows_from_violation_to_escalation() {
        let cs = intern("ledger_test::suspect/cgemm");
        record_abft_violation(cs, 64, 64, 64, "FLOAT_TO_BF16", 12.0);
        record_rollback("FLOAT_TO_BF16"); // peeks, keeps suspect
        record_escalation("FLOAT_TO_BF16", "FLOAT_TO_BF16X2"); // consumes
        record_escalation("FLOAT_TO_BF16X2", "FLOAT_TO_BF16X3"); // no suspect
        let rows = snapshot();
        let r = row(&rows, cs);
        assert_eq!(r.stats.abft_violations, 1);
        assert_eq!(r.stats.rollbacks, 1);
        assert_eq!(r.stats.escalations, 1);
        // The second escalation fell back to the supervisor row.
        let sup = rows
            .iter()
            .find(|r| r.callsite == "supervisor/burst" && r.mode == "FLOAT_TO_BF16X2")
            .expect("fallback row");
        assert!(sup.stats.escalations >= 1);
    }

    #[test]
    fn json_and_prometheus_render() {
        let cs = intern("ledger_test::render/zgemm");
        record_call(cs, 32, 32, 32, "BF16X2", 0.125, Some(0.1));
        record_abft_check(cs, 32, 32, 32, "BF16X2", 1e-3);
        let rows: Vec<Row> =
            snapshot().into_iter().filter(|r| r.callsite == cs).collect();
        let doc = rows_json(&rows);
        let parsed = json::parse(&doc).expect("ledger.json parses");
        assert_eq!(
            parsed.get("version").unwrap().as_f64(),
            Some(LEDGER_SCHEMA_VERSION as f64)
        );
        let meta = parsed.get("meta").expect("v2 meta header");
        assert_eq!(meta.get("rows").unwrap().as_f64(), Some(1.0));
        assert!(meta.get("deck_hash").unwrap().as_str().is_some());
        let entries = parsed.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("callsite").unwrap().as_str(), Some(cs));
        assert_eq!(e.get("calls").unwrap().as_f64(), Some(1.0));
        assert_eq!(e.get("abft_checks").unwrap().as_f64(), Some(1.0));
        let prom = rows_prometheus(&rows);
        assert!(prom.contains("# TYPE dcmesh_ledger_calls_total counter"), "{prom}");
        assert!(
            prom.contains(&format!(
                "dcmesh_ledger_calls_total{{callsite=\"{cs}\",shape=\"32x32x32\",mode=\"BF16X2\"}} 1"
            )),
            "{prom}"
        );
        let table = render_rows(&rows);
        assert!(table.contains("CALLSITE"), "{table}");
        assert!(table.contains(cs), "{table}");
    }

    #[test]
    fn scf_defect_lands_under_supervisor_row() {
        record_scf_defect("STANDARD_ledger_test", 3.5e-13);
        let rows = snapshot();
        let r = rows
            .iter()
            .find(|r| r.callsite == "supervisor/scf" && r.mode == "STANDARD_ledger_test")
            .expect("scf row");
        assert_eq!(r.stats.residuals.count, 1);
        assert_eq!(r.shape, "-");
    }

    /// Deterministic synthetic rows exercising every stats field,
    /// including awkward f64s (subnormal-adjacent, many digits) and
    /// residual observations in several decades.
    fn synthetic_rows() -> Vec<Row> {
        let mut h = ResidualHist::default();
        h.observe(3.141592653589793e-9);
        h.observe(0.7);
        h.observe(f64::INFINITY);
        let mut rows = vec![
            Row {
                callsite: "md/cgemm".to_string(),
                shape: "128x1024x4096".to_string(),
                mode: "FLOAT_TO_BF16".to_string(),
                stats: Stats {
                    calls: 180,
                    wall_s: 0.123456789012345,
                    device_s: 0.0456,
                    device_samples: 180,
                    escalations: 1,
                    rollbacks: 1,
                    health_violations: 0,
                    nonfinite_outputs: 2,
                    abft_checks: 90,
                    abft_violations: 1,
                    residuals: h,
                },
            },
            Row {
                callsite: "supervisor/scf".to_string(),
                shape: "-".to_string(),
                mode: "STANDARD".to_string(),
                stats: Stats { calls: 0, wall_s: 0.0, ..Stats::default() },
            },
        ];
        rows.sort_by(|a, b| {
            (&a.callsite, &a.shape, &a.mode).cmp(&(&b.callsite, &b.shape, &b.mode))
        });
        rows
    }

    #[test]
    fn v2_document_round_trips_bit_identically() {
        let rows = synthetic_rows();
        let meta = LedgerMeta {
            version: LEDGER_SCHEMA_VERSION,
            deck_hash: "0x00c0ffee00c0ffee".to_string(),
            ranks: 4,
            telemetry_level: "full".to_string(),
            sample_period: 8,
            rows: rows.len() as u64,
        };
        let doc = rows_json_with_meta(&meta, &rows);
        let (meta2, rows2) = parse_ledger(&doc).expect("v2 parses");
        assert_eq!(meta2, meta);
        assert_eq!(rows2, rows);
        // f64 fields must round-trip to the exact bit pattern, not just
        // PartialEq (which the struct comparison above already implies
        // for non-NaN values — make the bit claim explicit anyway).
        assert_eq!(
            rows2[0].stats.wall_s.to_bits(),
            rows[0].stats.wall_s.to_bits()
        );
        assert_eq!(
            rows2[0].stats.residuals.max.to_bits(),
            rows[0].stats.residuals.max.to_bits()
        );
        // And the re-render of the parse is byte-identical.
        assert_eq!(rows_json_with_meta(&meta2, &rows2), doc);
    }

    #[test]
    fn v1_headerless_document_still_parses() {
        let v1 = r#"{
  "version": 1,
  "entries": [
    {"callsite":"md/cgemm","shape":"64x64x64","mode":"STANDARD",
     "calls":7,"wall_s":0.5,"device_s":0.25,"device_samples":7,
     "time_misfit":2,"escalations":0,"rollbacks":0,"health_violations":0,
     "nonfinite_outputs":0,"abft_checks":3,"abft_violations":0,
     "residuals":{"count":3,"max":0.001,"buckets":[["1e-3",3]]}}
  ]
}"#;
        let (meta, rows) = parse_ledger(v1).expect("v1 parses");
        assert_eq!(meta.version, 1);
        assert_eq!(meta.deck_hash, "-");
        assert_eq!(meta.ranks, 1);
        assert_eq!(meta.rows, 1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].callsite, "md/cgemm");
        assert_eq!(rows[0].stats.calls, 7);
        assert_eq!(rows[0].stats.residuals.buckets[9], 3); // 1e-3 decade
        // Future schemas are refused, not misread.
        assert!(parse_ledger(r#"{"version": 99, "entries": []}"#).is_err());
    }

    #[test]
    fn merge_rows_is_order_independent() {
        // Three per-rank row sets with overlapping keys and f64 stats
        // chosen so naive different-order summation WOULD diverge in
        // the last bit if merge_rows didn't canonicalise the fold order.
        let mk = |cs: &str, wall: f64, dev: f64, res: &[f64]| {
            let mut h = ResidualHist::default();
            for &v in res {
                h.observe(v);
            }
            Row {
                callsite: cs.to_string(),
                shape: "128x128x128".to_string(),
                mode: "FLOAT_TO_BF16X2".to_string(),
                stats: Stats {
                    calls: 1,
                    wall_s: wall,
                    device_s: dev,
                    device_samples: 1,
                    residuals: h,
                    ..Stats::default()
                },
            }
        };
        let ranks = [
            vec![mk("a/sgemm", 0.1, 0.3, &[1e-7]), mk("b/cgemm", 1e-9, 1e-9, &[2.5])],
            vec![mk("b/cgemm", 1e9, 0.125, &[f64::NAN]), mk("c/zgemm", 0.7, 0.2, &[])],
            vec![mk("a/sgemm", 3.0, 1e-3, &[1e-13, 1e3])],
        ];
        let reference = merge_rows(&ranks);
        // Every permutation of the three sources must give byte-identical
        // serialized rows (bit-identical f64s included).
        let ref_bytes: Vec<String> = reference.iter().map(row_json).collect();
        let perms: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        for p in perms {
            let permuted: Vec<Vec<Row>> = p.iter().map(|&i| ranks[i].clone()).collect();
            let merged = merge_rows(&permuted);
            let bytes: Vec<String> = merged.iter().map(row_json).collect();
            assert_eq!(bytes, ref_bytes, "permutation {p:?} diverged");
            for (a, b) in merged.iter().zip(reference.iter()) {
                assert_eq!(a.stats.wall_s.to_bits(), b.stats.wall_s.to_bits());
                assert_eq!(a.stats.device_s.to_bits(), b.stats.device_s.to_bits());
            }
        }
    }

    #[test]
    fn stats_and_hist_merge_are_commutative() {
        let mut h1 = ResidualHist::default();
        h1.observe(1e-5);
        h1.observe(f64::INFINITY);
        let mut h2 = ResidualHist::default();
        h2.observe(0.25);
        let mut ab = h1.clone();
        ab.merge(&h2);
        let mut ba = h2.clone();
        ba.merge(&h1);
        assert_eq!(ab, ba);
        assert_eq!(ab.max.to_bits(), ba.max.to_bits());

        let s1 = Stats { calls: 3, wall_s: 0.1, device_s: 1e-9, device_samples: 3, ..Stats::default() };
        let s2 = Stats { calls: 5, wall_s: 1e9, device_s: 0.3, device_samples: 5, ..Stats::default() };
        let mut m1 = s1.clone();
        m1.merge(&s2);
        let mut m2 = s2.clone();
        m2.merge(&s1);
        assert_eq!(m1.wall_s.to_bits(), m2.wall_s.to_bits());
        assert_eq!(m1.device_s.to_bits(), m2.device_s.to_bits());
        assert_eq!(m1, m2);
    }

    // Property tests over shape_class boundaries: a pseudo-random dim
    // sweep plus the exact edges. (proptest resolves to the vendored
    // shim offline, so the sweep is a deterministic LCG, same idea.)

    #[test]
    fn shape_class_pow2_fixed_points_and_boundaries() {
        for e in 0..20u32 {
            let p = 1usize << e;
            // An exact power of two is its own bucket...
            assert_eq!(shape_class(p, 1, 1), format!("{p}x1x1").as_str());
            // ...one above rounds up to the next...
            assert_eq!(shape_class(p + 1, 1, 1), format!("{}x1x1", p << 1).as_str());
            // ...and one below (when not itself a power of two) rounds
            // up to p.
            if p > 2 {
                assert_eq!(shape_class(p - 1, 1, 1), format!("{p}x1x1").as_str());
            }
        }
    }

    #[test]
    fn shape_class_zero_dims_do_not_panic() {
        assert_eq!(shape_class(0, 0, 0), "1x1x1");
        assert_eq!(shape_class(0, 17, 0), "1x32x1");
    }

    #[test]
    fn shape_class_labels_round_trip_through_json() {
        let mut lcg = 0x2545f4914f6cdd1du64;
        for _ in 0..200 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let m = (lcg >> 33) as usize % 5000;
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let n = (lcg >> 33) as usize % 5000;
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (lcg >> 33) as usize % 5000;
            let label = shape_class(m, n, k);
            // Each dim in the label is a power of two >= the (nonzero-
            // clamped) input dim, and < 2x it.
            let dims: Vec<usize> =
                label.split('x').map(|d| d.parse().expect("numeric dim")).collect();
            assert_eq!(dims.len(), 3);
            for (d, orig) in dims.iter().zip([m, n, k]) {
                let orig = orig.max(1);
                assert!(d.is_power_of_two(), "{label}");
                assert!(*d >= orig && *d < 2 * orig.next_power_of_two(), "{label}");
            }
            // And the label survives the JSON exporter byte-for-byte.
            let row = Row {
                callsite: "prop/sgemm".to_string(),
                shape: label.to_string(),
                mode: "STANDARD".to_string(),
                stats: Stats::default(),
            };
            let parsed = parse_row(&json::parse(&row_json(&row)).expect("row parses"))
                .expect("row round-trips");
            assert_eq!(parsed.shape, label);
        }
    }
}

//! `dcmesh-telemetry`: one telemetry surface for the whole workspace.
//!
//! The paper's methodology is observational: per-call BLAS timings come
//! out of `MKL_VERBOSE=2` dumps (Tables VI/VII, Figure 3b) and per-kernel
//! device timelines out of `unitrace -k` (artifact A1). This crate is the
//! reproduction's single equivalent of both, shared by every layer:
//!
//! * **Spans** ([`span`], [`SpanGuard`]) — enter/exit pairs with typed
//!   attributes (compute mode, burst index, matrix shape). `mkl-lite`
//!   wraps every level-2/3 call in one, LFD wraps the QD sub-phases
//!   (propagate, nonlocal, energy, remap, shadow), QXMD wraps MD steps
//!   and SCF refreshes, and the supervisor wraps bursts — so a Figure
//!   3a-style cost breakdown falls out of any trace.
//! * **Events** ([`instant`]) — discrete occurrences: health violations,
//!   rollbacks, escalations, checkpoint writes.
//! * **Device timeline** ([`device_complete`]) — the `xe-gpu` simulated
//!   kernel clock, kept as a separate track so host spans and modelled
//!   kernels can be read side by side in one Perfetto view.
//! * **Metrics** ([`metrics`]) — counters, gauges, and log₂-bucketed
//!   histograms, dumped in Prometheus text format.
//! * **Exporters** ([`export`]) — JSONL event log, Chrome trace-event
//!   JSON (loadable in Perfetto / `chrome://tracing`), Prometheus text.
//! * **Callsite identity** ([`callsite`]) — stable `{phase}/{routine}`
//!   IDs for every BLAS call, minted from RAII phase scopes.
//! * **Accuracy/cost ledger** ([`ledger`]) — streaming per-(callsite,
//!   shape-class, mode) statistics (calls, wall/device seconds, ABFT
//!   residual histograms, escalations/rollbacks), exported as
//!   `ledger.json` and labelled Prometheus series.
//!
//! Control mirrors the `MKL_VERBOSE` convention: the `TELEMETRY`
//! environment variable (`off` | `events` | `full`) or the programmatic
//! [`set_level`]. `off` is the default and costs one relaxed atomic load
//! per instrumentation point — the disabled path allocates nothing and
//! takes no locks (the `telemetry_check --overhead-gate` bench enforces
//! this stays below 2% of a QD step).
//!
//! ```
//! use dcmesh_telemetry as telemetry;
//! use telemetry::{AttrValue, TelemetryLevel};
//!
//! telemetry::with_level(TelemetryLevel::Full, || {
//!     let _burst = telemetry::span("burst")
//!         .attr("mode", AttrValue::Str("FLOAT_TO_BF16"))
//!         .attr("burst_index", AttrValue::U64(0));
//!     {
//!         let _call = telemetry::span("SGEMM")
//!             .attr("m", AttrValue::U64(128))
//!             .attr("n", AttrValue::U64(896));
//!     } // SGEMM span ends here, nested inside the burst span
//! });
//! let events = telemetry::sink::drain();
//! assert_eq!(events.len(), 4); // B/E for the burst, B/E for the call
//! println!("{}", telemetry::export::chrome_trace(&events));
//! ```

pub mod callsite;
pub mod event;
pub mod export;
pub mod json;
pub mod ledger;
pub mod level;
pub mod metrics;
pub mod sink;
pub mod span;

pub use callsite::{callsite_for, current_phase, phase_scope, PhaseScope};
pub use event::{Attr, AttrValue, Event, EventKind, Track};
pub use level::{
    events_enabled, level, set_level, spans_enabled, with_level, TelemetryLevel,
};
pub use span::{
    device_complete, instant, sample_interval, sampled_span, set_sample_interval, span, SpanGuard,
};

/// The environment variable selecting the telemetry level
/// (`off` | `events` | `full`), read lazily on first use exactly like
/// `MKL_VERBOSE` / `MKL_BLAS_COMPUTE_MODE`.
pub const TELEMETRY_ENV: &str = "TELEMETRY";

/// The environment variable bounding the event sink's ring buffer
/// (total events retained across all shards; oldest are dropped first).
pub const TELEMETRY_BUFFER_ENV: &str = "TELEMETRY_BUFFER";

/// The environment variable selecting the 1-in-N sampling interval for
/// high-frequency call spans at `TELEMETRY=events` (default 16). Each
/// recorded span carries `sample_weight = N` so trace analysis can
/// rescale back to the full population.
pub const TELEMETRY_SAMPLE_ENV: &str = "TELEMETRY_SAMPLE";

//! Precision-format descriptors (paper Table IV).
//!
//! The paper characterises each format by its exponent and mantissa bit
//! counts; these descriptors drive both the Table IV harness and the
//! analytical error model.

/// Static description of a floating-point format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrecisionFormat {
    /// Human-readable name as used in the paper.
    pub name: &'static str,
    /// Number of exponent bits.
    pub exponent_bits: u32,
    /// Number of explicit mantissa bits (excluding the implicit leading 1).
    pub mantissa_bits: u32,
    /// Total storage width in bits (for memory-footprint modelling).
    pub storage_bits: u32,
}

impl PrecisionFormat {
    /// Machine epsilon `2^-mantissa_bits` of the format.
    pub fn epsilon(&self) -> f64 {
        2f64.powi(-(self.mantissa_bits as i32))
    }

    /// Unit roundoff (half an ulp at 1.0): the max relative error of a
    /// single round-to-nearest conversion, `2^-(mantissa_bits+1)`.
    pub fn unit_roundoff(&self) -> f64 {
        2f64.powi(-(self.mantissa_bits as i32) - 1)
    }

    /// Looks a format up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<&'static PrecisionFormat> {
        FORMATS.iter().find(|f| f.name.eq_ignore_ascii_case(name))
    }
}

/// IEEE binary64.
pub const FP64: PrecisionFormat = PrecisionFormat {
    name: "FP64",
    exponent_bits: 11,
    mantissa_bits: 52,
    storage_bits: 64,
};

/// IEEE binary32.
pub const FP32: PrecisionFormat = PrecisionFormat {
    name: "FP32",
    exponent_bits: 8,
    mantissa_bits: 23,
    storage_bits: 32,
};

/// TensorFloat-32 (19 significant bits, stored in 32).
pub const TF32: PrecisionFormat = PrecisionFormat {
    name: "TF32",
    exponent_bits: 8,
    mantissa_bits: 10,
    storage_bits: 32,
};

/// IEEE binary16.
pub const FP16: PrecisionFormat = PrecisionFormat {
    name: "FP16",
    exponent_bits: 5,
    mantissa_bits: 10,
    storage_bits: 16,
};

/// bfloat16.
pub const BF16: PrecisionFormat = PrecisionFormat {
    name: "BF16",
    exponent_bits: 8,
    mantissa_bits: 7,
    storage_bits: 16,
};

/// The formats studied in the paper, in Table IV order.
pub const FORMATS: [PrecisionFormat; 4] = [FP64, FP32, TF32, BF16];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_bit_counts() {
        // Exactly the rows of paper Table IV.
        assert_eq!((FP64.exponent_bits, FP64.mantissa_bits), (11, 52));
        assert_eq!((FP32.exponent_bits, FP32.mantissa_bits), (8, 23));
        assert_eq!((TF32.exponent_bits, TF32.mantissa_bits), (8, 10));
        assert_eq!((BF16.exponent_bits, BF16.mantissa_bits), (8, 7));
    }

    #[test]
    fn tf32_has_fp16_mantissa_and_bf16_exponent() {
        // "TF32 has the same number of mantissa bits as FP16 but the same
        // exponent range of BF16" — paper §V-A.
        assert_eq!(TF32.mantissa_bits, FP16.mantissa_bits);
        assert_eq!(TF32.exponent_bits, BF16.exponent_bits);
    }

    #[test]
    fn epsilons_match_native_types() {
        assert_eq!(FP32.epsilon(), f32::EPSILON as f64);
        assert_eq!(FP64.epsilon(), f64::EPSILON);
        assert_eq!(BF16.epsilon() as f32, crate::Bf16::EPSILON);
        assert_eq!(TF32.epsilon() as f32, crate::Tf32::EPSILON);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(PrecisionFormat::by_name("bf16"), Some(&BF16));
        assert_eq!(PrecisionFormat::by_name("Tf32"), Some(&TF32));
        assert_eq!(PrecisionFormat::by_name("fp8"), None);
    }

    #[test]
    fn accuracy_ordering() {
        assert!(BF16.epsilon() > TF32.epsilon());
        assert!(TF32.epsilon() > FP32.epsilon());
        assert!(FP32.epsilon() > FP64.epsilon());
    }
}

//! TensorFloat-32: 8 exponent bits, 10 explicit mantissa bits.
//!
//! TF32 is the 19-bit format used by matrix engines (Nvidia Ampere tensor
//! cores, Intel XMX in `FLOAT_TO_TF32` mode). It has the dynamic range of
//! `f32`/BF16 and the mantissa width of FP16. Implementations keep TF32
//! values inside 32-bit registers, so we store it as an `f32` whose low 13
//! mantissa bits are zero.

/// A TF32 value, stored as an `f32` with the low 13 mantissa bits cleared.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct Tf32(f32);

impl Tf32 {
    /// Positive zero.
    pub const ZERO: Tf32 = Tf32(0.0);
    /// One.
    pub const ONE: Tf32 = Tf32(1.0);
    /// Machine epsilon: 2⁻¹⁰.
    pub const EPSILON: f32 = 0.000_976_562_5;
    /// Number of explicit mantissa bits.
    pub const MANTISSA_BITS: u32 = 10;
    /// Number of exponent bits.
    pub const EXPONENT_BITS: u32 = 8;
    /// Number of low f32 mantissa bits dropped by the format.
    const DROPPED_BITS: u32 = 23 - Self::MANTISSA_BITS;

    /// Converts an `f32` to TF32 with round-to-nearest-even.
    #[inline]
    pub fn from_f32(x: f32) -> Tf32 {
        Tf32(round_f32_mantissa(x, Self::DROPPED_BITS))
    }

    /// Converts to `f32` (exact).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0
    }

    /// Rounds an `f32` to the nearest TF32 and returns it as an `f32`.
    #[inline]
    pub fn round_f32(x: f32) -> f32 {
        Tf32::from_f32(x).to_f32()
    }

    /// True if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.0.is_nan()
    }
}

/// Rounds an `f32` to a reduced-mantissa format by clearing the low
/// `dropped` mantissa bits with round-to-nearest-even.
///
/// This is the §V-B "proxy model" operation: `dropped = 23 - n` keeps `n`
/// mantissa bits. Shared by [`Tf32`] and the error-model experiments.
#[inline]
pub fn round_f32_mantissa(x: f32, dropped: u32) -> f32 {
    debug_assert!(dropped < 24, "cannot drop more bits than the mantissa has");
    if dropped == 0 || !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    let mask = (1u32 << dropped) - 1;
    let lsb = (bits >> dropped) & 1;
    let rounded = bits.wrapping_add((mask >> 1) + lsb);
    f32::from_bits(rounded & !mask)
}

impl From<f32> for Tf32 {
    #[inline]
    fn from(x: f32) -> Tf32 {
        Tf32::from_f32(x)
    }
}

impl From<Tf32> for f32 {
    #[inline]
    fn from(x: Tf32) -> f32 {
        x.to_f32()
    }
}

impl core::fmt::Debug for Tf32 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Tf32({})", self.0)
    }
}

impl core::fmt::Display for Tf32 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl core::ops::Add for Tf32 {
    type Output = Tf32;
    #[inline]
    fn add(self, rhs: Tf32) -> Tf32 {
        Tf32::from_f32(self.0 + rhs.0)
    }
}

impl core::ops::Sub for Tf32 {
    type Output = Tf32;
    #[inline]
    fn sub(self, rhs: Tf32) -> Tf32 {
        Tf32::from_f32(self.0 - rhs.0)
    }
}

impl core::ops::Mul for Tf32 {
    type Output = Tf32;
    #[inline]
    fn mul(self, rhs: Tf32) -> Tf32 {
        Tf32::from_f32(self.0 * rhs.0)
    }
}

impl core::ops::Neg for Tf32 {
    type Output = Tf32;
    #[inline]
    fn neg(self) -> Tf32 {
        Tf32(-self.0)
    }
}

/// Quantises every element of a slice to TF32 (kept as `f32` values).
pub fn quantize_slice(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "quantize_slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = Tf32::round_f32(s);
    }
}

/// Chunk-parallel [`quantize_slice`]: rounds `src` to TF32 into `dst`,
/// splitting the work over rayon tasks. Elementwise results are identical
/// to the sequential path.
pub fn round_slice_into(src: &[f32], dst: &mut [f32]) {
    use rayon::prelude::*;
    assert_eq!(src.len(), dst.len(), "round_slice_into length mismatch");
    dst.par_chunks_mut(crate::split::PAR_CHUNK).enumerate().for_each(|(ci, chunk)| {
        let base = ci * crate::split::PAR_CHUNK;
        let len = chunk.len();
        for (d, &s) in chunk.iter_mut().zip(&src[base..base + len]) {
            *d = Tf32::round_f32(s);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representable_values_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32 / 4.0;
            assert_eq!(Tf32::round_f32(x), x, "{x} must be exact in tf32");
        }
    }

    #[test]
    fn low_mantissa_bits_cleared() {
        let r = Tf32::round_f32(core::f32::consts::PI);
        assert_eq!(r.to_bits() & 0x1FFF, 0, "low 13 bits must be zero");
    }

    #[test]
    fn round_to_nearest_even_at_tie() {
        // Halfway between 1.0 and 1+eps: tie, round to even (1.0).
        assert_eq!(Tf32::round_f32(1.0 + Tf32::EPSILON / 2.0), 1.0);
        // Halfway between 1+eps and 1+2eps: round to even (1+2eps).
        assert_eq!(
            Tf32::round_f32(1.0 + 1.5 * Tf32::EPSILON),
            1.0 + 2.0 * Tf32::EPSILON
        );
    }

    #[test]
    fn relative_error_bounded() {
        let mut x = 3.33e-8_f32;
        while x < 1.0e8 {
            let rel = ((Tf32::round_f32(x) - x) / x).abs();
            assert!(rel <= 2f32.powi(-11) * 1.0001, "x={x}");
            x *= 9.173;
        }
    }

    #[test]
    fn tf32_more_precise_than_bf16() {
        // TF32 keeps strictly more mantissa bits, so its rounding error on a
        // generic value must not exceed BF16's.
        let vals = [0.1f32, 1.2345, 777.77, 1.0e-3, 9.999e5];
        for &x in &vals {
            let tf = (Tf32::round_f32(x) - x).abs();
            let bf = (crate::Bf16::round_f32(x) - x).abs();
            assert!(tf <= bf, "x={x}: tf32 err {tf} > bf16 err {bf}");
        }
    }

    #[test]
    fn specials_pass_through() {
        assert!(Tf32::from_f32(f32::NAN).is_nan());
        assert_eq!(Tf32::round_f32(f32::INFINITY), f32::INFINITY);
        assert_eq!(Tf32::round_f32(0.0), 0.0);
        assert_eq!(Tf32::round_f32(-0.0), -0.0);
    }

    #[test]
    fn round_slice_into_matches_quantize_slice() {
        let src: Vec<f32> = (0..crate::split::PAR_CHUNK + 5)
            .map(|i| ((i * 7) as f32).sin() * 1e4)
            .collect();
        let mut seq = vec![0.0f32; src.len()];
        let mut par = vec![1.0f32; src.len()];
        quantize_slice(&src, &mut seq);
        round_slice_into(&src, &mut par);
        assert_eq!(seq, par);
    }

    #[test]
    fn round_f32_mantissa_zero_drop_is_identity() {
        for &x in &[1.234f32, -9.87e-5, 3.4e37] {
            assert_eq!(round_f32_mantissa(x, 0), x);
        }
    }
}

//! A small real-scalar abstraction over `f32`/`f64`.
//!
//! The kernels in this workspace are generic over the two IEEE binary
//! formats only, so rather than pull in a trait-ecosystem dependency we
//! define exactly the operations the code uses.

/// Real scalar: `f32` or `f64`.
pub trait Real:
    Copy
    + PartialOrd
    + Default
    + Send
    + Sync
    + core::fmt::Debug
    + core::fmt::Display
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Div<Output = Self>
    + core::ops::Neg<Output = Self>
    + core::ops::AddAssign
    + core::ops::SubAssign
    + core::ops::MulAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the format.
    const EPSILON: Self;

    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `sqrt(self² + other²)` without intermediate overflow.
    fn hypot(self, other: Self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Exponential.
    fn exp(self) -> Self;
    /// Two-argument arctangent.
    fn atan2(self, other: Self) -> Self;
    /// Larger of two values (NaN-propagating like `f64::max` is not needed).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
    /// True if NaN.
    fn is_nan(self) -> bool;
    /// True if finite.
    fn is_finite(self) -> bool;
    /// Lossy conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Lossless widening to `f64`.
    fn to_f64(self) -> f64;
    /// Lossy conversion from `usize`.
    fn from_usize(x: usize) -> Self {
        Self::from_f64(x as f64)
    }
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn hypot(self, other: Self) -> Self {
                self.hypot(other)
            }
            #[inline]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline]
            fn atan2(self, other: Self) -> Self {
                self.atan2(other)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                if self > other { self } else { other }
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                if self < other { self } else { other }
            }
            #[inline]
            fn is_nan(self) -> bool {
                self.is_nan()
            }
            #[inline]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_quadrature<T: Real>(n: usize) -> T {
        // ∫₀^π sin ≈ 2 by midpoint rule — exercises the trait surface.
        let h = T::from_f64(core::f64::consts::PI / n as f64);
        let mut acc = T::ZERO;
        for i in 0..n {
            let x = h * (T::from_usize(i) + T::from_f64(0.5));
            acc += x.sin() * h;
        }
        acc
    }

    #[test]
    fn trait_surface_works_for_both_widths() {
        assert!((generic_quadrature::<f64>(1000) - 2.0).abs() < 1e-5);
        assert!((generic_quadrature::<f32>(1000) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn min_max_total_on_ordinary_values() {
        assert_eq!(Real::max(1.0f64, 2.0), 2.0);
        assert_eq!(Real::min(1.0f32, 2.0), 1.0);
    }
}

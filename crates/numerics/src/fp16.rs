//! IEEE-754 binary16 (half precision).
//!
//! FP16 appears in the paper's Table I (419 TFLOP/s on the XMX engines,
//! same as BF16) and Table IV context: 5 exponent bits, 10 mantissa bits.
//! oneMKL's `FLOAT_TO_*` modes do not include an FP16 variant — its
//! narrow exponent range (max ≈ 65504) makes silent overflow too easy for
//! general BLAS inputs, which is itself an instructive datapoint this
//! type lets tests demonstrate. Unlike BF16/TF32, correct conversion
//! must handle gradual underflow into denormals and exponent re-biasing.

/// An IEEE binary16 value stored as its 16-bit pattern
/// (1 sign, 5 exponent, 10 mantissa bits).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct Fp16(pub u16);

impl Fp16 {
    /// Positive zero.
    pub const ZERO: Fp16 = Fp16(0);
    /// One.
    pub const ONE: Fp16 = Fp16(0x3C00);
    /// Machine epsilon: 2⁻¹⁰.
    pub const EPSILON: f32 = 0.000_976_562_5;
    /// Largest finite value: 65504.
    pub const MAX: f32 = 65_504.0;
    /// Smallest positive normal value: 2⁻¹⁴ (the literal is its exact
    /// decimal expansion, hence more digits than f32 resolves).
    #[allow(clippy::excessive_precision)]
    pub const MIN_POSITIVE: f32 = 6.103_515_625e-5;
    /// Smallest positive denormal: 2⁻²⁴ (exact decimal expansion).
    #[allow(clippy::excessive_precision)]
    pub const MIN_DENORMAL: f32 = 5.960_464_477_539_063e-8;
    /// Number of explicit mantissa bits.
    pub const MANTISSA_BITS: u32 = 10;
    /// Number of exponent bits.
    pub const EXPONENT_BITS: u32 = 5;

    /// Converts an `f32` with round-to-nearest-even, including gradual
    /// underflow to denormals and overflow to infinity.
    pub fn from_f32(x: f32) -> Fp16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let abs = bits & 0x7FFF_FFFF;

        if abs > 0x7F80_0000 {
            // NaN: quieten, keep a payload bit.
            return Fp16(sign | 0x7E00);
        }
        if abs >= 0x4780_0000 {
            // |x| >= 65520 rounds to infinity (65504 + half ulp).
            return Fp16(sign | 0x7C00);
        }
        if abs < 0x3280_0000 {
            // |x| < 2^-26: far below half the smallest denormal — zero.
            // (Values in [2^-26, 2^-25] round correctly through the
            // denormal path below, including the tie at exactly 2^-25.)
            return Fp16(sign);
        }

        let exp = ((abs >> 23) as i32) - 127; // unbiased f32 exponent
        if exp < -14 {
            // Denormal range: value = m · 2^-24 with m in [0, 1024).
            // Shift the 24-bit significand (with implicit 1) right.
            let significand = (abs & 0x007F_FFFF) | 0x0080_0000; // 24 bits
            let shift = (-14 - exp) as u32 + 13; // down to 10-bit field
            if shift >= 32 {
                return Fp16(sign);
            }
            let kept = significand >> shift;
            let rem_mask = (1u32 << shift) - 1;
            let rem = significand & rem_mask;
            let half = 1u32 << (shift - 1);
            let mut m = kept;
            if rem > half || (rem == half && (kept & 1) == 1) {
                m += 1;
            }
            // m may carry into the normal range (m == 1024): that is the
            // correct smallest normal.
            return Fp16(sign | m as u16);
        }

        // Normal range: re-bias and round the low 13 mantissa bits.
        let unrounded = (((exp + 15) as u32) << 10) | ((abs >> 13) & 0x03FF);
        let rem = abs & 0x1FFF;
        let mut h = unrounded;
        if rem > 0x1000 || (rem == 0x1000 && (h & 1) == 1) {
            h += 1; // may carry into the exponent — still correct (and
                    // into infinity at the very top, handled by the
                    // early-out above)
        }
        Fp16(sign | h as u16)
    }

    /// Converts to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let man = (self.0 & 0x03FF) as u32;
        let bits = match (exp, man) {
            (0, 0) => sign,
            (0, m) => {
                // Denormal: normalise into f32.
                let lead = 31 - m.leading_zeros(); // position of leading 1
                let shift = 10 - lead;
                // value = m·2^-24 = 2^{lead-24}·(1.xxx): exponent field
                // 127 + lead - 24.
                let f32_exp = 127 - 14 - shift;
                let f32_man = (m << (shift + 13)) & 0x007F_FFFF;
                sign | (f32_exp << 23) | f32_man
            }
            (0x1F, 0) => sign | 0x7F80_0000,
            (0x1F, m) => sign | 0x7F80_0000 | (m << 13) | 0x0040_0000,
            (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }

    /// Rounds an `f32` to the nearest FP16 and returns it as an `f32`.
    pub fn round_f32(x: f32) -> f32 {
        Fp16::from_f32(x).to_f32()
    }

    /// True if NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True if ±infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }
}

impl core::fmt::Debug for Fp16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp16({})", self.to_f32())
    }
}

impl core::fmt::Display for Fp16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::excessive_precision)]
    fn exact_values_roundtrip() {
        for x in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, 6.103_515_625e-5, -0.25] {
            assert_eq!(Fp16::round_f32(x), x, "{x} must be fp16-exact");
        }
    }

    #[test]
    fn integers_up_to_2048_exact() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(Fp16::round_f32(x), x, "integer {i}");
        }
        // 2049 is not representable (11 significand bits needed).
        assert_ne!(Fp16::round_f32(2049.0), 2049.0);
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(Fp16::from_f32(65520.0).is_infinite());
        assert!(Fp16::from_f32(1.0e6).is_infinite());
        assert!(Fp16::from_f32(-1.0e6).is_infinite());
        assert_eq!(Fp16::round_f32(65519.9), 65504.0);
        // ... which BF16 survives easily — the range trade-off in one line.
        assert!(crate::Bf16::from_f32(1.0e6).is_finite());
    }

    #[test]
    fn denormal_range_handled() {
        // 2^-24 is the smallest denormal.
        assert_eq!(Fp16::round_f32(Fp16::MIN_DENORMAL), Fp16::MIN_DENORMAL);
        // Half of it rounds to zero (tie to even).
        assert_eq!(Fp16::round_f32(Fp16::MIN_DENORMAL / 2.0), 0.0);
        // 1.5 denormals round to 2 denormals.
        assert_eq!(
            Fp16::round_f32(1.5 * Fp16::MIN_DENORMAL),
            2.0 * Fp16::MIN_DENORMAL
        );
        // A mid-range denormal roundtrips.
        let x = 37.0 * Fp16::MIN_DENORMAL;
        assert_eq!(Fp16::round_f32(x), x);
    }

    #[test]
    fn round_to_nearest_even_at_one() {
        assert_eq!(Fp16::round_f32(1.0 + Fp16::EPSILON / 2.0), 1.0);
        assert_eq!(
            Fp16::round_f32(1.0 + 1.5 * Fp16::EPSILON),
            1.0 + 2.0 * Fp16::EPSILON
        );
    }

    #[test]
    fn nan_preserved() {
        assert!(Fp16::from_f32(f32::NAN).is_nan());
        assert!(Fp16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn exhaustive_roundtrip_all_patterns() {
        // Every fp16 bit pattern must roundtrip through f32 exactly.
        for bits in 0..=u16::MAX {
            let h = Fp16(bits);
            let x = h.to_f32();
            if h.is_nan() {
                assert!(x.is_nan());
                continue;
            }
            let back = Fp16::from_f32(x);
            assert_eq!(back.0, bits, "pattern {bits:#06x} -> {x} -> {:#06x}", back.0);
        }
    }

    #[test]
    fn conversion_error_bounded_in_normal_range() {
        let mut x = 1.0e-4f32;
        while x < 6.0e4 {
            let r = Fp16::round_f32(x);
            let rel = ((r - x) / x).abs();
            assert!(rel <= 2f32.powi(-11), "x={x} rel={rel}");
            x *= 3.7;
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn same_mantissa_as_tf32_narrower_range_than_bf16() {
        // The Table IV relationships.
        assert_eq!(Fp16::MANTISSA_BITS, crate::Tf32::MANTISSA_BITS);
        assert!(Fp16::EXPONENT_BITS < crate::Bf16::EXPONENT_BITS);
    }
}

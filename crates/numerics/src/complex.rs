//! Minimal complex arithmetic for the DCMESH kernels.
//!
//! The electronic wave functions in LFD are complex single-precision
//! matrices, so the precision study lives almost entirely in CGEMM. This
//! module provides a plain `#[repr(C)]` complex type (interleaved
//! real/imag, the BLAS memory layout) generic over `f32`/`f64`, plus both
//! multiplication algorithms that matter for the study:
//!
//! * the conventional product (4 real multiplies, 2 adds), and
//! * the **3M** product (3 real multiplies, 5 adds — Karatsuba), which is
//!   what oneMKL's `COMPLEX_3M` compute mode uses to trade multiplier
//!   throughput for extra additions (and different cancellation behaviour).

use crate::real::Real;

/// A complex number with interleaved storage, layout-compatible with the
/// `(re, im)` pairs BLAS expects.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Single-precision complex, the CGEMM element type.
pub type C32 = Complex<f32>;
/// Double-precision complex, the ZGEMM element type.
pub type C64 = Complex<f64>;

/// Shorthand constructor for [`C32`].
#[inline]
pub const fn c32(re: f32, im: f32) -> C32 {
    Complex { re, im }
}

/// Shorthand constructor for [`C64`].
#[inline]
pub const fn c64(re: f64, im: f64) -> C64 {
    Complex { re, im }
}

impl<T: Real> Complex<T> {
    /// Zero.
    #[inline]
    pub fn zero() -> Self {
        Complex { re: T::ZERO, im: T::ZERO }
    }

    /// One.
    #[inline]
    pub fn one() -> Self {
        Complex { re: T::ONE, im: T::ZERO }
    }

    /// The imaginary unit.
    #[inline]
    pub fn i() -> Self {
        Complex { re: T::ZERO, im: T::ONE }
    }

    /// Builds from a real value.
    #[inline]
    pub fn from_real(re: T) -> Self {
        Complex { re, im: T::ZERO }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed without intermediate overflow via `hypot`.
    #[inline]
    pub fn abs(self) -> T {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> T {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: T) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    /// `e^{iθ}` for a real phase θ.
    #[inline]
    pub fn cis(theta: T) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex { re: r * self.im.cos(), im: r * self.im.sin() }
    }

    /// The conventional 4-multiplication complex product.
    ///
    /// `(a+bi)(c+di) = (ac - bd) + (ad + bc)i`
    #[inline]
    pub fn mul_4m(self, rhs: Self) -> Self {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }

    /// The 3M (Karatsuba) complex product used by `COMPLEX_3M`.
    ///
    /// ```text
    /// t1 = c (a + b);  t2 = a (d - c);  t3 = b (c + d)
    /// re = t1 - t3;    im = t1 + t2
    /// ```
    ///
    /// Mathematically identical to [`Complex::mul_4m`], but with different
    /// rounding/cancellation behaviour — exactly the numerical distinction
    /// the paper's `COMPLEX_3M` results probe.
    #[inline]
    pub fn mul_3m(self, rhs: Self) -> Self {
        let (a, b) = (self.re, self.im);
        let (c, d) = (rhs.re, rhs.im);
        let t1 = c * (a + b);
        let t2 = a * (d - c);
        let t3 = b * (c + d);
        Complex { re: t1 - t3, im: t1 + t2 }
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex { re: self.re / d, im: -self.im / d }
    }
}

impl C32 {
    /// Widens to double precision.
    #[inline]
    pub fn to_c64(self) -> C64 {
        c64(self.re as f64, self.im as f64)
    }
}

impl C64 {
    /// Narrows to single precision (rounding each component).
    #[inline]
    pub fn to_c32(self) -> C32 {
        c32(self.re as f32, self.im as f32)
    }
}

impl<T: Real> core::ops::Add for Complex<T> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl<T: Real> core::ops::Sub for Complex<T> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl<T: Real> core::ops::Mul for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.mul_4m(rhs)
    }
}

impl<T: Real> core::ops::Div for Complex<T> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self.mul_4m(rhs.inv())
    }
}

impl<T: Real> core::ops::Neg for Complex<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Complex { re: -self.re, im: -self.im }
    }
}

impl<T: Real> core::ops::AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re = self.re + rhs.re;
        self.im = self.im + rhs.im;
    }
}

impl<T: Real> core::ops::SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re = self.re - rhs.re;
        self.im = self.im - rhs.im;
    }
}

impl<T: Real> core::ops::MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = self.mul_4m(rhs);
    }
}

impl<T: Real> core::ops::Mul<T> for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({:?}, {:?}i)", self.re, self.im)
    }
}

impl<T: core::fmt::Display + Real> core::fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.im < T::ZERO {
            write!(f, "{}-{}i", self.re, -self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

/// Reinterprets a complex slice as an interleaved real slice of twice the
/// length. Sound because `Complex<T>` is `#[repr(C)]` with two `T` fields.
#[inline]
pub fn as_interleaved<T>(z: &[Complex<T>]) -> &[T] {
    // SAFETY: Complex<T> is repr(C) { re: T, im: T } — size 2*T, align T.
    unsafe { core::slice::from_raw_parts(z.as_ptr() as *const T, z.len() * 2) }
}

/// Mutable variant of [`as_interleaved`].
#[inline]
pub fn as_interleaved_mut<T>(z: &mut [Complex<T>]) -> &mut [T] {
    // SAFETY: see as_interleaved.
    unsafe { core::slice::from_raw_parts_mut(z.as_mut_ptr() as *mut T, z.len() * 2) }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < EPS * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn basic_identities() {
        let z = c64(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.inv(), Complex::one()));
        assert!(close(z + (-z), Complex::zero()));
        assert!(close(z.conj().conj(), z));
    }

    #[test]
    fn i_squared_is_minus_one() {
        let i = C64::i();
        assert!(close(i * i, -Complex::one()));
    }

    #[test]
    fn mul_3m_equals_4m_exactly_on_integers() {
        // With integer-valued components, both algorithms are exact.
        for a in -5..5i32 {
            for b in -5..5i32 {
                let x = c64(a as f64, b as f64);
                let y = c64((a + 2) as f64, (b - 3) as f64);
                assert_eq!(x.mul_3m(y), x.mul_4m(y));
            }
        }
    }

    #[test]
    fn mul_3m_close_to_4m_on_reals() {
        let x = c32(0.123_456_7, -9.876_543);
        let y = c32(core::f32::consts::PI, core::f32::consts::E);
        let p3 = x.mul_3m(y);
        let p4 = x.mul_4m(y);
        let d = (p3 - p4).abs();
        assert!(d <= 1e-4 * p4.abs(), "3M deviates too much: {d}");
        // ... but the bit patterns generally differ — that is the point.
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..32 {
            let t = k as f64 * 0.196_349_54;
            let z = C64::cis(t);
            assert!((z.abs() - 1.0).abs() < EPS);
            // arg is the phase folded into (-pi, pi].
            let expected = (t + core::f64::consts::PI).rem_euclid(core::f64::consts::TAU)
                - core::f64::consts::PI;
            assert!((z.arg() - expected).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = c64(0.0, core::f64::consts::PI).exp();
        assert!(close(z, c64(-1.0, 0.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let x = c64(1.5, -2.5);
        let y = c64(-0.75, 4.0);
        assert!(close((x * y) / y, x));
    }

    #[test]
    fn interleaved_view_layout() {
        let mut v = vec![c32(1.0, 2.0), c32(3.0, 4.0)];
        assert_eq!(as_interleaved(&v), &[1.0, 2.0, 3.0, 4.0]);
        as_interleaved_mut(&mut v)[3] = 9.0;
        assert_eq!(v[1].im, 9.0);
    }

    #[test]
    fn widen_narrow_roundtrip() {
        let z = c32(1.25, -0.5); // exactly representable
        assert_eq!(z.to_c64().to_c32(), z);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1+2i");
    }
}

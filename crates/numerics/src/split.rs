//! Split-precision decomposition of `f32` into sums of BF16 terms.
//!
//! oneMKL's `FLOAT_TO_BF16X2` / `FLOAT_TO_BF16X3` modes represent each
//! single-precision input as a sum of two or three bfloat16 values:
//!
//! ```text
//! x ≈ hi + mid + lo,   hi  = bf16(x)
//!                      mid = bf16(x - hi)
//!                      lo  = bf16(x - hi - mid)
//! ```
//!
//! Each extra term recovers roughly 8 more mantissa bits, so the three-term
//! split carries ~24 bits — comparable to a full `f32` mantissa — which is
//! why the paper observes BF16x3 accuracy "comparable to standard
//! single-precision arithmetic". A GEMM on split inputs multiplies the
//! component matrices pairwise on the systolic arrays and accumulates in
//! FP32; the x2 mode uses 3 of the 4 cross products (dropping `mid·mid`
//! and below), the x3 mode uses the 6 leading products of 9 — hence the
//! (16/3)x and (8/3)x theoretical speedups in paper Table II.

use crate::bf16::Bf16;

/// A two-term BF16 split of an `f32` value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Split2 {
    /// Leading term: `bf16(x)`.
    pub hi: f32,
    /// Correction term: `bf16(x - hi)`.
    pub lo: f32,
}

/// A three-term BF16 split of an `f32` value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Split3 {
    /// Leading term: `bf16(x)`.
    pub hi: f32,
    /// First correction: `bf16(x - hi)`.
    pub mid: f32,
    /// Second correction: `bf16(x - hi - mid)`.
    pub lo: f32,
}

impl Split2 {
    /// Decomposes `x` into two BF16 terms.
    #[inline]
    pub fn new(x: f32) -> Split2 {
        let hi = Bf16::round_f32(x);
        let lo = if hi.is_finite() {
            Bf16::round_f32(x - hi)
        } else {
            0.0
        };
        Split2 { hi, lo }
    }

    /// Reconstructs the (approximate) original value.
    #[inline]
    pub fn value(self) -> f32 {
        self.hi + self.lo
    }
}

impl Split3 {
    /// Decomposes `x` into three BF16 terms.
    #[inline]
    pub fn new(x: f32) -> Split3 {
        let hi = Bf16::round_f32(x);
        if !hi.is_finite() {
            return Split3 { hi, mid: 0.0, lo: 0.0 };
        }
        let r1 = x - hi;
        let mid = Bf16::round_f32(r1);
        let lo = Bf16::round_f32(r1 - mid);
        Split3 { hi, mid, lo }
    }

    /// Reconstructs the (approximate) original value.
    #[inline]
    pub fn value(self) -> f32 {
        self.hi + self.mid + self.lo
    }
}

/// Splits a slice into `depth` (1, 2 or 3) BF16 component slices.
///
/// `components` must contain `depth` slices, each the length of `src`.
/// Component 0 is the leading term; later components are successively
/// smaller corrections. All components are BF16-representable values
/// stored as `f32`, ready to feed an emulated systolic GEMM.
pub fn split_slice(src: &[f32], components: &mut [&mut [f32]]) {
    let depth = components.len();
    assert!(
        (1..=3).contains(&depth),
        "split depth must be 1, 2 or 3, got {depth}"
    );
    for c in components.iter() {
        assert_eq!(c.len(), src.len(), "component length mismatch");
    }
    match depth {
        1 => {
            for (d, &s) in components[0].iter_mut().zip(src) {
                *d = Bf16::round_f32(s);
            }
        }
        2 => {
            // Split borrows: components[0] and components[1] simultaneously.
            let (head, tail) = components.split_at_mut(1);
            let (c0, c1) = (&mut *head[0], &mut *tail[0]);
            for i in 0..src.len() {
                let s = Split2::new(src[i]);
                c0[i] = s.hi;
                c1[i] = s.lo;
            }
        }
        3 => {
            let (head, tail) = components.split_at_mut(1);
            let (mid_s, lo_s) = tail.split_at_mut(1);
            let (c0, c1, c2) = (&mut *head[0], &mut *mid_s[0], &mut *lo_s[0]);
            for i in 0..src.len() {
                let s = Split3::new(src[i]);
                c0[i] = s.hi;
                c1[i] = s.mid;
                c2[i] = s.lo;
            }
        }
        _ => unreachable!(),
    }
}

/// Elements per rayon task in the chunk-parallel quantisation paths
/// ([`split_slice_into`], `bf16::round_slice_into`, `tf32::round_slice_into`).
/// 16Ki elements (64 KiB of `f32`) amortises task overhead while keeping
/// enough chunks to load-balance the large Table VII operands.
pub const PAR_CHUNK: usize = 1 << 14;

/// Chunk-parallel [`split_slice`]: decomposes `src` into `components.len()`
/// BF16 term planes, splitting the work over rayon tasks.
///
/// A single fused pass computes all terms of each element at once — the
/// residual subtractions reuse the just-computed leading terms from
/// registers instead of re-reading (and re-deriving) them per plane. The
/// planes' chunks are zipped, so each rayon task owns the same-index
/// chunk of every plane: disjoint writes, no allocation, race-free. The
/// elementwise results are identical to [`split_slice`] / [`Split2::new`]
/// / [`Split3::new`].
pub fn split_slice_into(src: &[f32], components: &mut [&mut [f32]]) {
    use rayon::prelude::*;
    let depth = components.len();
    assert!(
        (1..=3).contains(&depth),
        "split depth must be 1, 2 or 3, got {depth}"
    );
    for c in components.iter() {
        assert_eq!(c.len(), src.len(), "component length mismatch");
    }
    match components {
        [c0] => {
            c0.par_chunks_mut(PAR_CHUNK).enumerate().for_each(|(ci, hs)| {
                let base = ci * PAR_CHUNK;
                for (i, h) in hs.iter_mut().enumerate() {
                    *h = Bf16::round_f32(src[base + i]);
                }
            });
        }
        [c0, c1] => {
            c0.par_chunks_mut(PAR_CHUNK)
                .zip(c1.par_chunks_mut(PAR_CHUNK))
                .enumerate()
                .for_each(|(ci, (hs, ls))| {
                    let base = ci * PAR_CHUNK;
                    for i in 0..hs.len() {
                        let s = Split2::new(src[base + i]);
                        hs[i] = s.hi;
                        ls[i] = s.lo;
                    }
                });
        }
        [c0, c1, c2] => {
            c0.par_chunks_mut(PAR_CHUNK)
                .zip(c1.par_chunks_mut(PAR_CHUNK))
                .zip(c2.par_chunks_mut(PAR_CHUNK))
                .enumerate()
                .for_each(|(ci, ((hs, ms), ls))| {
                    let base = ci * PAR_CHUNK;
                    for i in 0..hs.len() {
                        let s = Split3::new(src[base + i]);
                        hs[i] = s.hi;
                        ms[i] = s.mid;
                        ls[i] = s.lo;
                    }
                });
        }
        _ => unreachable!(),
    }
}

/// Worst-case relative representation error of a `depth`-term BF16 split,
/// ignoring denormals (§V-B of the paper: dropping all but `n` mantissa
/// bits induces at most a `2^{-n-1}` relative input perturbation).
pub fn split_relative_error_bound(depth: usize) -> f32 {
    // Each BF16 term contributes 8 effective mantissa bits (7 explicit + 1
    // implicit); the residual after `depth` terms is bounded by half an ulp
    // of the last term.
    match depth {
        1 => 2f32.powi(-8),
        2 => 2f32.powi(-16),
        3 => 2f32.powi(-24),
        _ => panic!("split depth must be 1, 2 or 3, got {depth}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(x: f32, approx: f32) -> f32 {
        if x == 0.0 {
            approx.abs()
        } else {
            ((approx - x) / x).abs()
        }
    }

    #[test]
    fn split2_recovers_16_bits() {
        let vals = [core::f32::consts::PI, 0.1, -1234.5678, 3.77e-6, 8.9e12];
        for &x in &vals {
            let s = Split2::new(x);
            assert!(
                rel_err(x, s.value()) <= split_relative_error_bound(2),
                "x={x} err={}",
                rel_err(x, s.value())
            );
        }
    }

    #[test]
    fn split3_is_near_exact_for_f32() {
        // Three BF16 terms carry >= 24 mantissa bits, so reconstruction is
        // exact for almost all f32 values (residual below half an f32 ulp).
        let vals = [core::f32::consts::E, -0.333_333_34, 99999.99, 1.0e-20];
        for &x in &vals {
            let s = Split3::new(x);
            assert!(
                rel_err(x, s.value()) <= split_relative_error_bound(3),
                "x={x} hi={} mid={} lo={}",
                s.hi,
                s.mid,
                s.lo
            );
        }
    }

    #[test]
    #[allow(clippy::excessive_precision)]
    fn splits_are_bf16_representable() {
        let x = 7.123_456_7e-3_f32;
        let s = Split3::new(x);
        for (name, t) in [("hi", s.hi), ("mid", s.mid), ("lo", s.lo)] {
            assert_eq!(Bf16::round_f32(t), t, "{name} term not bf16-exact");
        }
    }

    #[test]
    fn terms_decrease_in_magnitude() {
        let x = 1.234_567_8_f32;
        let s = Split3::new(x);
        assert!(s.hi.abs() > s.mid.abs() || s.mid == 0.0);
        assert!(s.mid.abs() > s.lo.abs() || s.lo == 0.0);
    }

    #[test]
    fn exact_bf16_values_have_zero_tail() {
        let x = 1.5f32; // exactly representable in bf16
        let s = Split3::new(x);
        assert_eq!(s.hi, 1.5);
        assert_eq!(s.mid, 0.0);
        assert_eq!(s.lo, 0.0);
    }

    #[test]
    fn split_slice_depths_match_scalar() {
        let src: Vec<f32> = (0..97).map(|i| ((i * 37) as f32).cos() * 42.0).collect();
        // depth 1
        let mut a = vec![0.0; src.len()];
        split_slice(&src, &mut [&mut a]);
        for (i, &v) in a.iter().enumerate() {
            assert_eq!(v, Bf16::round_f32(src[i]));
        }
        // depth 2
        let (mut h, mut l) = (vec![0.0; src.len()], vec![0.0; src.len()]);
        split_slice(&src, &mut [&mut h, &mut l]);
        for i in 0..src.len() {
            let s = Split2::new(src[i]);
            assert_eq!((h[i], l[i]), (s.hi, s.lo), "i={i}");
        }
        // depth 3
        let (mut h3, mut m3, mut l3) =
            (vec![0.0; src.len()], vec![0.0; src.len()], vec![0.0; src.len()]);
        split_slice(&src, &mut [&mut h3, &mut m3, &mut l3]);
        for i in 0..src.len() {
            let s = Split3::new(src[i]);
            assert_eq!((h3[i], m3[i], l3[i]), (s.hi, s.mid, s.lo), "i={i}");
        }
    }

    #[test]
    fn infinity_split_has_zero_corrections() {
        let s = Split3::new(f32::MAX); // rounds to +inf in bf16
        assert!(s.hi.is_infinite());
        assert_eq!(s.mid, 0.0);
        assert_eq!(s.lo, 0.0);
    }

    #[test]
    #[should_panic(expected = "split depth")]
    fn zero_depth_panics() {
        split_slice(&[1.0], &mut []);
    }

    #[test]
    fn split_slice_into_matches_sequential() {
        // Length chosen to span several PAR_CHUNK boundaries would be slow
        // in a unit test; a ragged non-multiple length still exercises the
        // chunk-edge arithmetic. Include non-finite and huge values so the
        // saturation guard paths are compared too.
        let mut src: Vec<f32> = (0..PAR_CHUNK + 37)
            .map(|i| ((i * 29) as f32).sin() * 1e3 + (i as f32) * 1e-3)
            .collect();
        src[7] = f32::MAX; // rounds to +inf in bf16
        src[11] = f32::INFINITY;
        src[13] = -0.0;
        for depth in 1..=3usize {
            let mut seq: Vec<Vec<f32>> = (0..depth).map(|_| vec![0.0; src.len()]).collect();
            {
                let mut views: Vec<&mut [f32]> = seq.iter_mut().map(|p| &mut p[..]).collect();
                split_slice(&src, &mut views);
            }
            let mut par: Vec<Vec<f32>> = (0..depth).map(|_| vec![9.9; src.len()]).collect();
            {
                let mut views: Vec<&mut [f32]> = par.iter_mut().map(|p| &mut p[..]).collect();
                split_slice_into(&src, &mut views);
            }
            for (c, (s, p)) in seq.iter().zip(&par).enumerate() {
                for i in 0..src.len() {
                    assert!(
                        s[i] == p[i] && s[i].to_bits() == p[i].to_bits(),
                        "depth {depth} component {c} element {i}: {} vs {}",
                        s[i],
                        p[i]
                    );
                }
            }
        }
    }
}

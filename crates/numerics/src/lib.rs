//! Software-emulated low-precision numeric formats for the DCMESH
//! BLAS-precision study.
//!
//! Intel oneMKL's *alternative compute modes* (`FLOAT_TO_BF16`,
//! `FLOAT_TO_BF16X2`, `FLOAT_TO_BF16X3`, `FLOAT_TO_TF32`, `COMPLEX_3M`)
//! change how single-precision GEMM inputs are represented on the device:
//! each FP32 value is converted to a sum of one, two or three BF16 terms
//! (or rounded to TF32), the component matrices are multiplied on the
//! systolic matrix engines, and products are accumulated back in FP32.
//!
//! This crate provides everything those modes need, with bit-exact
//! round-to-nearest-even semantics, so that the numerical behaviour of the
//! modes can be studied on ordinary CPUs:
//!
//! * [`Bf16`] — bfloat16 (8 exponent bits, 7 mantissa bits) stored in 16 bits.
//! * [`Tf32`] — TensorFloat-32 (8 exponent bits, 10 mantissa bits) stored as
//!   an `f32` whose low mantissa bits are zero.
//! * [`split`] — decomposition of `f32` values/slices into sums of 1–3 BF16
//!   terms, the core of the `FLOAT_TO_BF16X{2,3}` modes.
//! * [`Complex`] — a minimal complex type with both the conventional 4-real-
//!   multiplication product and the 3M (Karatsuba) product used by the
//!   `COMPLEX_3M` mode.
//! * [`format`] — descriptors for each precision format (paper Table IV).
//! * [`error_model`] — the paper's §V-B proxy error model (relative GEMM
//!   error ≈ 2⁻ⁿ, independent of input magnitude).

//! ```
//! use dcmesh_numerics::{Bf16, Split3, Tf32};
//!
//! let x = core::f32::consts::PI;
//! // One BF16 term keeps ~8 significand bits...
//! assert!((Bf16::round_f32(x) - x).abs() < x * 2f32.powi(-8));
//! // ...TF32 keeps ~11...
//! assert!((Tf32::round_f32(x) - x).abs() < x * 2f32.powi(-11));
//! // ...and three BF16 terms recover full single precision.
//! let s = Split3::new(x);
//! assert_eq!(s.value(), x);
//! ```

pub mod bf16;
pub mod complex;
pub mod error_model;
pub mod format;
pub mod fp16;
pub mod real;
pub mod reduce;
pub mod split;
pub mod tf32;

pub use bf16::Bf16;
pub use complex::{c32, c64, Complex, C32, C64};
pub use format::{PrecisionFormat, FORMATS};
pub use fp16::Fp16;
pub use real::Real;
pub use split::{Split2, Split3};
pub use tf32::Tf32;

//! bfloat16: the 16-bit truncated form of IEEE-754 binary32.
//!
//! BF16 keeps the full 8-bit exponent of `f32` (so its dynamic range equals
//! single precision) but only 7 explicit mantissa bits. Conversion from
//! `f32` uses round-to-nearest-even, matching both Intel AMX/XMX and the
//! conversion oneMKL performs inside its `FLOAT_TO_BF16*` compute modes.

/// A bfloat16 value, stored as its 16-bit pattern (the upper half of the
/// corresponding `f32` bit pattern).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct Bf16(pub u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Machine epsilon: 2⁻⁷ (distance from 1.0 to the next BF16).
    pub const EPSILON: f32 = 0.007_812_5;
    /// Number of explicit mantissa bits.
    pub const MANTISSA_BITS: u32 = 7;
    /// Number of exponent bits.
    pub const EXPONENT_BITS: u32 = 8;
    /// Largest finite BF16 as an `f32`.
    pub const MAX: f32 = 3.389_531_4e38;

    /// Converts an `f32` to BF16 with round-to-nearest-even.
    ///
    /// NaN payloads are preserved in the upper bits (quietened if truncation
    /// would produce an infinity pattern). Overflow rounds to infinity,
    /// matching hardware `VCVTNEPS2BF16` semantics.
    #[inline]
    pub fn from_f32(x: f32) -> Bf16 {
        let bits = x.to_bits();
        if x.is_nan() {
            // Force a quiet NaN; keep the sign and top payload bits.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the 16 truncated bits.
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb);
        let _ = round_bit;
        Bf16((rounded >> 16) as u16)
    }

    /// Converts back to `f32` (exact: BF16 values are a subset of `f32`).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Rounds an `f32` to the nearest BF16 and returns it as an `f32`.
    ///
    /// This is the "quantise in place" operation the split-precision
    /// decompositions use.
    #[inline]
    pub fn round_f32(x: f32) -> f32 {
        Bf16::from_f32(x).to_f32()
    }

    /// Raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// True if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// True if this value is +/- infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7F80
    }

    /// True for finite values.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }
}

impl From<f32> for Bf16 {
    #[inline]
    fn from(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    #[inline]
    fn from(x: Bf16) -> f32 {
        x.to_f32()
    }
}

impl core::fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl core::fmt::Display for Bf16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

// Arithmetic is defined through f32: BF16 hardware multiplies promote to
// wider accumulators, so elementwise ops in this emulation compute in f32
// and round the result back.
impl core::ops::Add for Bf16 {
    type Output = Bf16;
    #[inline]
    fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl core::ops::Sub for Bf16 {
    type Output = Bf16;
    #[inline]
    fn sub(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl core::ops::Mul for Bf16 {
    type Output = Bf16;
    #[inline]
    fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl core::ops::Neg for Bf16 {
    type Output = Bf16;
    #[inline]
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

/// Quantises every element of a slice to BF16 (kept as `f32` values).
pub fn quantize_slice(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "quantize_slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = Bf16::round_f32(s);
    }
}

/// Chunk-parallel [`quantize_slice`]: rounds `src` to BF16 into `dst`,
/// splitting the work over rayon tasks. Elementwise results are identical
/// to the sequential path (rounding is a pure per-element function), so
/// callers may switch freely between the two.
pub fn round_slice_into(src: &[f32], dst: &mut [f32]) {
    use rayon::prelude::*;
    assert_eq!(src.len(), dst.len(), "round_slice_into length mismatch");
    dst.par_chunks_mut(crate::split::PAR_CHUNK).enumerate().for_each(|(ci, chunk)| {
        let base = ci * crate::split::PAR_CHUNK;
        let len = chunk.len();
        for (d, &s) in chunk.iter_mut().zip(&src[base..base + len]) {
            *d = Bf16::round_f32(s);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -256..=256 {
            let x = i as f32;
            assert_eq!(Bf16::round_f32(x), x, "integer {i} must be exact in bf16");
        }
    }

    #[test]
    fn one_plus_epsilon_rounds_to_even() {
        // 1 + eps/2 is exactly halfway between 1.0 and 1+eps; RNE keeps 1.0.
        let half_ulp = 1.0 + Bf16::EPSILON / 2.0;
        assert_eq!(Bf16::round_f32(half_ulp), 1.0);
        // 1 + 3*eps/2 is halfway between 1+eps and 1+2eps; RNE picks 1+2eps
        // (even mantissa).
        let x = 1.0 + 1.5 * Bf16::EPSILON;
        assert_eq!(Bf16::round_f32(x), 1.0 + 2.0 * Bf16::EPSILON);
    }

    #[test]
    fn relative_error_bounded_by_half_ulp() {
        let mut x = 1.000_123_4e-10_f32;
        while x < 1.0e10 {
            let r = Bf16::round_f32(x);
            let rel = ((r - x) / x).abs();
            assert!(rel <= 2f32.powi(-8) * 1.0001, "x={x} r={r} rel={rel}");
            x *= 7.345;
        }
    }

    #[test]
    fn nan_and_infinity_preserved() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(Bf16::from_f32(f32::INFINITY).is_infinite());
        assert_eq!(Bf16::from_f32(f32::NEG_INFINITY).to_f32(), f32::NEG_INFINITY);
        // A large-but-finite f32 that exceeds BF16 max rounds to infinity.
        assert!(Bf16::from_f32(f32::MAX).is_infinite());
    }

    #[test]
    fn sign_handling() {
        assert_eq!(Bf16::round_f32(-1.5), -1.5);
        assert_eq!((-Bf16::ONE).to_f32(), -1.0);
        assert_eq!(Bf16::from_f32(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn epsilon_is_next_representable_gap() {
        let one = Bf16::ONE;
        let next = Bf16::from_bits(one.to_bits() + 1);
        assert_eq!(next.to_f32() - one.to_f32(), Bf16::EPSILON);
    }

    #[test]
    fn round_slice_into_matches_quantize_slice() {
        let src: Vec<f32> = (0..crate::split::PAR_CHUNK + 13)
            .map(|i| ((i * 13) as f32).cos() * 512.0)
            .collect();
        let mut seq = vec![0.0f32; src.len()];
        let mut par = vec![1.0f32; src.len()];
        quantize_slice(&src, &mut seq);
        round_slice_into(&src, &mut par);
        assert_eq!(seq, par);
    }

    #[test]
    fn quantize_slice_matches_scalar() {
        let src: Vec<f32> = (0..64).map(|i| (i as f32).sin() * 3.7).collect();
        let mut dst = vec![0.0f32; 64];
        quantize_slice(&src, &mut dst);
        for (i, (&d, &s)) in dst.iter().zip(&src).enumerate() {
            assert_eq!(d, Bf16::round_f32(s), "element {i}");
        }
    }

    #[test]
    fn arithmetic_ops_round_back() {
        let a = Bf16::from_f32(1.0);
        let b = Bf16::from_f32(Bf16::EPSILON / 4.0);
        // The sum is not representable; must round back to 1.0.
        assert_eq!((a + b).to_f32(), 1.0);
        assert_eq!((a * Bf16::from_f32(2.0)).to_f32(), 2.0);
        assert_eq!((a - a).to_f32(), 0.0);
    }
}

//! The paper's §V-B proxy error model.
//!
//! To explain why the relative BLAS error is independent of matrix size,
//! the paper considers rounding off all but the lowest `n` mantissa bits of
//! the GEMM inputs. For non-denormal inputs this perturbs each input by at
//! most `2^{-n-1}` relative, and the relative error of a product
//! `(a+Δa)(b+Δb)` is bounded by
//!
//! ```text
//! |Δa/a| + |Δb/b| + |Δa·Δb / ab|  ≤  2^{-n} + o(2^{-n})
//! ```
//!
//! independent of `a` and `b`. Each entry of `AB` is a sum of such products,
//! so when all products share a sign (no cancellation) the bound carries
//! over to the matrix product — hence "relative error of BLAS compute in
//! BF16 ... is independent of matrix size".

use crate::tf32::round_f32_mantissa;

/// Bound on the relative error of a product of two values each carrying `n`
/// effective mantissa bits: `2^{-n} + 2^{-2n-2}` (the exact form of the
/// paper's `2^{-n} + o(2^{-n})`).
pub fn product_relative_error_bound(mantissa_bits: u32) -> f64 {
    let n = mantissa_bits as i32;
    2f64.powi(-n) + 2f64.powi(-2 * n - 2)
}

/// Effective mantissa bits carried by a compute mode's input representation.
///
/// Each BF16 split term contributes 8 bits (7 explicit + implicit one);
/// TF32 contributes 11 (10 explicit + implicit one). These drive the
/// predicted accuracy ordering BF16 < TF32 < BF16x2 < BF16x3 ≈ FP32.
pub fn effective_mantissa_bits(mode_mantissa_terms: &[u32]) -> u32 {
    mode_mantissa_terms.iter().sum()
}

/// Empirically measures the maximum relative error of scalar products when
/// both factors are rounded to `n` explicit mantissa bits, over `samples`
/// logarithmically spaced magnitudes.
///
/// Returns `(max_relative_error, bound)`; the model predicts
/// `max ≤ bound` and (crucially) no dependence on magnitude.
pub fn measure_product_error(n_mantissa_bits: u32, samples: usize) -> (f64, f64) {
    assert!(n_mantissa_bits <= 23);
    let dropped = 23 - n_mantissa_bits;
    let mut max_rel = 0.0f64;
    // Deterministic low-discrepancy sweep over magnitudes and mantissas.
    let mut x = 1.234_567e-6_f64;
    for i in 0..samples {
        let a = (x * (1.0 + 0.618_033_99 * ((i % 89) as f64) / 89.0)) as f32;
        let b = (x * 3.7 * (1.0 + 0.414_213_56 * ((i % 97) as f64) / 97.0)) as f32;
        let ra = round_f32_mantissa(a, dropped);
        let rb = round_f32_mantissa(b, dropped);
        let exact = a as f64 * b as f64;
        let approx = ra as f64 * rb as f64;
        if exact != 0.0 {
            let rel = ((approx - exact) / exact).abs();
            if rel > max_rel {
                max_rel = rel;
            }
        }
        x *= 1.37;
        if x > 1.0e6 {
            x = 2.345_678e-6;
        }
    }
    // With n explicit mantissa bits the significand carries n+1 bits, so
    // each rounded input is perturbed by at most 2^-(n+1) relative — the
    // paper's 2^-n-1 with its n equal to our explicit bit count.
    (max_rel, product_relative_error_bound(n_mantissa_bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_error_within_bound_bf16() {
        let (max_rel, bound) = measure_product_error(7, 4096);
        assert!(max_rel <= bound, "bf16: {max_rel} > {bound}");
        // And not absurdly loose: max observed should be within 100x.
        assert!(max_rel >= bound / 100.0, "bf16 bound far from tight: {max_rel} vs {bound}");
    }

    #[test]
    fn measured_error_within_bound_tf32() {
        let (max_rel, bound) = measure_product_error(10, 4096);
        assert!(max_rel <= bound, "tf32: {max_rel} > {bound}");
    }

    #[test]
    fn error_independent_of_magnitude() {
        // The §V-B claim: the relative product error does not depend on the
        // input magnitude. Compare small- and large-magnitude sweeps.
        let dropped = 23 - 7;
        let mut worst_small = 0.0f64;
        let mut worst_large = 0.0f64;
        for i in 0..2000 {
            let frac = 1.0 + (i as f32) / 2000.0; // mantissas in [1,2)
            for (scale, worst) in [(1e-12f32, &mut worst_small), (1e12f32, &mut worst_large)] {
                let a = frac * scale;
                let b = (2.0 - frac / 2.0) * scale;
                let ra = round_f32_mantissa(a, dropped);
                let rb = round_f32_mantissa(b, dropped);
                let exact = a as f64 * b as f64;
                let rel = ((ra as f64 * rb as f64 - exact) / exact).abs();
                if rel > *worst {
                    *worst = rel;
                }
            }
        }
        let ratio = worst_small / worst_large;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "magnitude dependence detected: small={worst_small} large={worst_large}"
        );
    }

    #[test]
    fn mode_ordering_by_effective_bits() {
        let bf16 = effective_mantissa_bits(&[8]);
        let tf32 = effective_mantissa_bits(&[11]);
        let bf16x2 = effective_mantissa_bits(&[8, 8]);
        let bf16x3 = effective_mantissa_bits(&[8, 8, 8]);
        assert!(bf16 < tf32 && tf32 < bf16x2 && bf16x2 < bf16x3);
        assert!(bf16x3 >= 24, "bf16x3 must reach f32-class accuracy");
    }

    #[test]
    fn bound_shrinks_exponentially() {
        let b8 = product_relative_error_bound(8);
        let b16 = product_relative_error_bound(16);
        let b24 = product_relative_error_bound(24);
        assert!(b8 / b16 > 200.0 && b16 / b24 > 200.0);
    }
}

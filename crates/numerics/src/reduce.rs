//! Fixed-shape deterministic reductions.
//!
//! Floating-point addition is not associative, so the value of a sum
//! depends on the order *and grouping* in which the terms are combined.
//! Naive accumulation loops tie that grouping to iteration order, and
//! parallel reductions tie it to scheduling — which is why the same run
//! can produce different bits at different thread counts, and why a
//! degraded 2-rank fleet could drift from a 4-rank one.
//!
//! This module fixes the grouping instead: every reduction is evaluated
//! over a **fixed-shape blocked pairwise tree** whose shape depends only
//! on the number of terms. Leaves of up to [`BLOCK`] terms are summed
//! sequentially in index order; longer ranges split at the midpoint and
//! combine the two halves' results. The shape (and therefore the result,
//! bit for bit) is identical whether the terms were produced by one
//! thread or sixteen, on one rank or four — the OzBLAS / HPR-BLAS
//! reproducibility discipline applied to every order-sensitive sum in
//! the stack (see SNIPPETS.md).
//!
//! As a bonus, the pairwise tree has O(log n) worst-case error growth
//! versus O(n) for the running loop, so routing a sum through here never
//! costs accuracy.
//!
//! ```
//! use dcmesh_numerics::reduce;
//!
//! let v: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
//! // Same slice, same bits — regardless of who computed the elements.
//! assert_eq!(reduce::sum_f64(&v).to_bits(), reduce::sum_f64(&v).to_bits());
//! ```

use crate::complex::C64;

/// Leaf width of the reduction tree: ranges of at most this many terms
/// are summed sequentially in index order. Part of the reduction's
/// *shape contract* — changing it changes every sum's bit pattern, so it
/// is a compile-time constant, never a tunable.
pub const BLOCK: usize = 32;

/// Values that can ride the fixed-shape tree: addition must be
/// commutative-ish floating point (f64 or componentwise complex).
pub trait TreeSum: Copy {
    /// Additive identity (the empty-sum result).
    fn tree_zero() -> Self;
    /// Single combination step.
    fn tree_add(self, rhs: Self) -> Self;
}

impl TreeSum for f64 {
    #[inline]
    fn tree_zero() -> Self {
        0.0
    }
    #[inline]
    fn tree_add(self, rhs: Self) -> Self {
        self + rhs
    }
}

impl TreeSum for C64 {
    #[inline]
    fn tree_zero() -> Self {
        C64::zero()
    }
    #[inline]
    fn tree_add(self, rhs: Self) -> Self {
        self + rhs
    }
}

/// Sums `f(start)..f(start+len)` over the fixed tree. `f` is invoked
/// exactly once per index, in index order within each leaf.
fn tree_with<T: TreeSum, F: FnMut(usize) -> T>(start: usize, len: usize, f: &mut F) -> T {
    if len <= BLOCK {
        let mut acc = T::tree_zero();
        for i in start..start + len {
            acc = acc.tree_add(f(i));
        }
        acc
    } else {
        // Midpoint split, left-biased: the shape is a function of `len`
        // alone.
        let half = len / 2;
        let lo = tree_with(start, half, f);
        let hi = tree_with(start + half, len - half, f);
        lo.tree_add(hi)
    }
}

/// Deterministic sum of `f(0)..f(n)` — the allocation-free workhorse for
/// hot inner loops. The closure is called once per index; leaves are
/// evaluated in index order.
#[inline]
pub fn sum_with<T: TreeSum, F: FnMut(usize) -> T>(n: usize, mut f: F) -> T {
    tree_with(0, n, &mut f)
}

/// Deterministic sum of a real slice.
#[inline]
pub fn sum_f64(v: &[f64]) -> f64 {
    sum_with(v.len(), |i| v[i])
}

/// Deterministic sum of a complex slice (componentwise, same tree).
#[inline]
pub fn sum_c64(v: &[C64]) -> C64 {
    sum_with(v.len(), |i| v[i])
}

/// Deterministic conjugated dot product `Σᵢ conj(a[i])·b[i]` (the BLAS
/// `dotc` convention), with the 4-multiplication product.
#[inline]
pub fn dot_c64(a: &[C64], b: &[C64]) -> C64 {
    debug_assert_eq!(a.len(), b.len());
    sum_with(a.len(), |i| a[i].conj().mul_4m(b[i]))
}

/// Deterministic sum of squared moduli `Σᵢ |v[i]|²` (the `nrm2`
/// radicand; take `.sqrt()` for the norm itself — a single well-defined
/// rounding on top of a deterministic sum).
#[inline]
pub fn sum_norm_sqr(v: &[C64]) -> f64 {
    sum_with(v.len(), |i| v[i].norm_sqr())
}

/// Deterministic parallel map-reduce: computes `f(i)` for `i in 0..n`
/// across the current rayon pool, then folds the results through the
/// same fixed tree **in index order**. Scheduling decides only *when*
/// each term is produced, never how the sum is grouped, so the result is
/// bit-identical from 1 to N threads.
pub fn par_map_sum<T, F>(n: usize, f: F) -> T
where
    T: TreeSum + Send,
    F: Fn(usize) -> T + Sync,
{
    use rayon::prelude::*;
    // An indexed parallel collect preserves index order by construction.
    let parts: Vec<T> = (0..n).into_par_iter().map(f).collect();
    sum_with(parts.len(), |i| parts[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn terms(n: usize) -> Vec<f64> {
        // Magnitudes spread over ~12 decades so grouping really matters.
        (0..n).map(|i| ((i * 2654435761) % 97) as f64 * 10f64.powi((i % 12) as i32 - 6)).collect()
    }

    #[test]
    fn matches_naive_loop_to_roundoff_and_is_stable() {
        for n in [0, 1, 31, 32, 33, 64, 100, 1000, 4097] {
            let v = terms(n);
            let naive: f64 = v.iter().sum();
            let tree = sum_f64(&v);
            assert!(
                (tree - naive).abs() <= 1e-12 * naive.abs().max(1.0),
                "n={n}: tree {tree} vs naive {naive}"
            );
            assert_eq!(tree.to_bits(), sum_f64(&v).to_bits(), "same input, same bits");
        }
    }

    #[test]
    fn shape_depends_only_on_length() {
        // The closure-based and slice-based paths must agree bit for bit
        // (they share the tree), and chunked production must not matter.
        let v = terms(777);
        let via_closure = sum_with(v.len(), |i| v[i]);
        assert_eq!(sum_f64(&v).to_bits(), via_closure.to_bits());
    }

    #[test]
    fn tree_differs_from_running_sum_on_adversarial_input() {
        // Sanity check that the tree is *actually* a different grouping:
        // for a large cancellation-heavy input the running loop and the
        // tree disagree in the low bits. (Not a guarantee for every
        // input — just evidence the fixture exercises non-associativity.)
        let v = terms(4097);
        let naive: f64 = v.iter().sum();
        assert_ne!(sum_f64(&v).to_bits(), naive.to_bits());
    }

    #[test]
    fn par_map_sum_is_bit_identical_across_thread_counts() {
        let v = terms(2048);
        let mut bits = Vec::new();
        for threads in [1, 2, 4, 7] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build pool");
            let s = pool.install(|| par_map_sum(v.len(), |i| v[i] * v[(i * 31) % v.len()]));
            bits.push(s.to_bits());
        }
        assert!(bits.windows(2).all(|w| w[0] == w[1]), "bits varied across pools: {bits:?}");
    }

    #[test]
    fn complex_reductions_are_componentwise_deterministic() {
        let v: Vec<_> = (0..513).map(|i| c64(terms(i + 1)[i], -(i as f64) * 0.37)).collect();
        let s1 = sum_c64(&v);
        let s2 = sum_with(v.len(), |i| v[i]);
        assert_eq!(s1.re.to_bits(), s2.re.to_bits());
        assert_eq!(s1.im.to_bits(), s2.im.to_bits());

        let d = dot_c64(&v, &v);
        assert!((d.re - sum_norm_sqr(&v)).abs() <= 1e-9 * d.re.abs());
        assert!(d.im.abs() <= 1e-9 * d.re.abs(), "self dot is (numerically) real");
    }

    #[test]
    fn empty_and_singleton_sums() {
        assert_eq!(sum_f64(&[]), 0.0);
        assert_eq!(sum_f64(&[42.5]), 42.5);
        let z = sum_c64(&[]);
        assert_eq!((z.re, z.im), (0.0, 0.0));
    }
}

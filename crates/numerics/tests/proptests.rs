//! Property-based tests for the low-precision numeric substrate.

use dcmesh_numerics::{
    bf16::Bf16,
    complex::{c64, Complex},
    split::{split_relative_error_bound, Split2, Split3},
    tf32::Tf32,
};
use proptest::prelude::*;

/// Finite, normal-range f32s (the error bounds exclude denormals).
fn normal_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        1.0e-20f32..1.0e20f32,
        (1.0e-20f32..1.0e20f32).prop_map(|x| -x),
    ]
}

proptest! {
    #[test]
    fn bf16_roundtrip_is_idempotent(x in normal_f32()) {
        let once = Bf16::round_f32(x);
        prop_assert_eq!(Bf16::round_f32(once), once);
    }

    #[test]
    fn bf16_rounding_is_monotone(a in normal_f32(), b in normal_f32()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::round_f32(lo) <= Bf16::round_f32(hi));
    }

    #[test]
    fn bf16_relative_error_half_ulp(x in normal_f32()) {
        let r = Bf16::round_f32(x);
        if r.is_finite() {
            let rel = ((r - x) / x).abs();
            prop_assert!(rel <= 2f32.powi(-8), "x={} r={} rel={}", x, r, rel);
        }
    }

    #[test]
    fn tf32_relative_error_half_ulp(x in normal_f32()) {
        let r = Tf32::round_f32(x);
        let rel = ((r - x) / x).abs();
        prop_assert!(rel <= 2f32.powi(-11), "x={} r={} rel={}", x, r, rel);
    }

    #[test]
    fn tf32_never_less_accurate_than_bf16(x in normal_f32()) {
        let tf = (Tf32::round_f32(x) as f64 - x as f64).abs();
        let bf = (Bf16::round_f32(x) as f64 - x as f64).abs();
        prop_assert!(tf <= bf);
    }

    #[test]
    fn split2_error_bound(x in normal_f32()) {
        let s = Split2::new(x);
        if s.hi.is_finite() {
            let rel = ((s.value() - x) / x).abs();
            prop_assert!(rel <= split_relative_error_bound(2), "x={} rel={}", x, rel);
        }
    }

    #[test]
    fn split3_error_bound(x in normal_f32()) {
        let s = Split3::new(x);
        if s.hi.is_finite() {
            let rel = ((s.value() - x) / x).abs();
            prop_assert!(rel <= split_relative_error_bound(3), "x={} rel={}", x, rel);
        }
    }

    #[test]
    fn split_terms_are_bf16_fixed_points(x in normal_f32()) {
        let s = Split3::new(x);
        for t in [s.hi, s.mid, s.lo] {
            prop_assert_eq!(Bf16::round_f32(t), t);
        }
    }

    #[test]
    fn split3_strictly_tighter_than_split2(x in normal_f32()) {
        let e2 = (Split2::new(x).value() as f64 - x as f64).abs();
        let e3 = (Split3::new(x).value() as f64 - x as f64).abs();
        prop_assert!(e3 <= e2 + f32::EPSILON as f64 * x.abs() as f64);
    }

    #[test]
    fn complex_3m_matches_4m_within_cancellation_bound(
        a in -1.0e3f64..1.0e3, b in -1.0e3f64..1.0e3,
        c in -1.0e3f64..1.0e3, d in -1.0e3f64..1.0e3,
    ) {
        let x = c64(a, b);
        let y = c64(c, d);
        let p3 = x.mul_3m(y);
        let p4 = x.mul_4m(y);
        // 3M has a worse worst-case, but it is still bounded by a small
        // multiple of eps times the input magnitudes.
        let scale = x.abs() * y.abs() + 1.0;
        prop_assert!((p3 - p4).abs() <= 16.0 * f64::EPSILON * scale,
            "x={:?} y={:?} d={}", x, y, (p3 - p4).abs());
    }

    #[test]
    fn complex_conj_distributes_over_product(
        a in -1.0e3f64..1.0e3, b in -1.0e3f64..1.0e3,
        c in -1.0e3f64..1.0e3, d in -1.0e3f64..1.0e3,
    ) {
        let x = c64(a, b);
        let y = c64(c, d);
        let lhs = (x * y).conj();
        let rhs = x.conj() * y.conj();
        prop_assert!((lhs - rhs).abs() <= 8.0 * f64::EPSILON * (x.abs() * y.abs() + 1.0));
    }

    #[test]
    fn complex_norm_is_multiplicative(
        a in -1.0e3f64..1.0e3, b in -1.0e3f64..1.0e3,
        c in -1.0e3f64..1.0e3, d in -1.0e3f64..1.0e3,
    ) {
        let x = c64(a, b);
        let y = c64(c, d);
        let lhs = (x * y).abs();
        let rhs = x.abs() * y.abs();
        prop_assert!((lhs - rhs).abs() <= 8.0 * f64::EPSILON * (rhs + 1.0));
    }

    #[test]
    fn cis_is_a_group_homomorphism(s in -6.0f64..6.0, t in -6.0f64..6.0) {
        let lhs = Complex::cis(s) * Complex::cis(t);
        let rhs = Complex::<f64>::cis(s + t);
        prop_assert!((lhs - rhs).abs() < 1e-12);
    }
}

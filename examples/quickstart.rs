//! Quickstart: run a laptop-scale DCMESH simulation and print the
//! per-QD-step observables the way DCMESH prints them "to the wall".
//!
//! ```text
//! cargo run --release --example quickstart
//! MKL_BLAS_COMPUTE_MODE=FLOAT_TO_BF16 cargo run --release --example quickstart
//! ```
//!
//! The second form demonstrates the paper's headline workflow: switching
//! BLAS precision with an environment variable and no code changes.

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::output::console_line;
use dcmesh::runner::run_simulation;

fn main() {
    // Print failures through Display (Rust's `main -> Result` uses Debug,
    // which would hide the "valid values are ..." hint in the mode error).
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), dcmesh::RunError> {
    // A short burst of the 40-atom-structured small deck.
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.total_qd_steps = 300;
    cfg.qd_steps_per_md = 100;
    cfg.record_every = 10;

    // A typo in MKL_BLAS_COMPUTE_MODE surfaces here as a structured
    // error (listing the valid values) instead of a panic.
    let mode = mkl_lite::try_compute_mode()?;
    println!(
        "DCMESH-rs quickstart: {} atoms-equivalent deck, mesh {}^3, {} orbitals, mode {}",
        40,
        cfg.mesh_points,
        cfg.n_orb,
        mode.label()
    );
    println!("deck: dt = {} a.u., {} QD steps, SCF refresh every {}", cfg.dt, cfg.total_qd_steps, cfg.qd_steps_per_md);

    let result = run_simulation::<f32>(&cfg)?;

    for record in &result.records {
        println!("{}", console_line(record));
    }

    let last = result.last().expect("deck records at least one step");
    println!("\nsummary ({}):", result.label);
    println!("  excited electrons : {:.6}", last.nexc);
    println!("  kinetic energy    : {:.6} Ha", last.ekin);
    println!("  current density   : {:.6e} a.u.", last.javg);
    println!(
        "  SCF drift absorbed: {:?}",
        result.scf_drift.iter().map(|d| format!("{d:.2e}")).collect::<Vec<_>>()
    );
    println!(
        "  CPU<->GPU traffic : {} bytes over {} events (shadow dynamics)",
        result.transfers.total(),
        result.transfers.events
    );
    Ok(())
}

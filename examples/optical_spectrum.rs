//! Optical spectrum of the laser-driven system — and its robustness to
//! BLAS precision.
//!
//! Runs the small deck under FP32 and BF16, Fourier-analyses the current
//! traces, and compares the spectra: peak *positions* survive the
//! low-precision BLAS essentially unchanged even where pointwise
//! trajectories have already diverged — the spectral version of the
//! paper's "accuracy is retained in key output parameters".
//!
//! ```text
//! cargo run --release --example optical_spectrum
//! ```

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::runner::run_simulation;
use dcmesh::spectrum::current_spectrum;
use mkl_lite::{with_compute_mode, ComputeMode};

fn main() -> Result<(), dcmesh::RunError> {
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.total_qd_steps = 1200;
    cfg.qd_steps_per_md = 400;
    cfg.laser_duration_fs = 0.12; // short kick, then free oscillation
    cfg.laser_amplitude = 0.3;

    println!("running FP32 and BF16 trajectories ({} QD steps each)...", cfg.total_qd_steps);
    let fp32 = with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))?;
    let bf16 = with_compute_mode(ComputeMode::FloatToBf16, || run_simulation::<f32>(&cfg))?;

    let n_omega = 240;
    let omega_max = 3.0;
    let damping = 0.01;
    let s32 = current_spectrum(&fp32.records, n_omega, omega_max, damping);
    let s16 = current_spectrum(&bf16.records, n_omega, omega_max, damping);

    println!("\n{:>10} {:>14} {:>14}", "omega(Ha)", "|j(w)| FP32", "|j(w)| BF16");
    for i in (0..n_omega).step_by(12) {
        println!(
            "{:>10.3} {:>14.4e} {:>14.4e}",
            s32.omega[i], s32.amplitude[i], s16.amplitude[i]
        );
    }

    let p32 = s32.peak_omega();
    let p16 = s16.peak_omega();
    println!("\ndominant resonance: FP32 at ω = {p32:.4} Ha, BF16 at ω = {p16:.4} Ha");
    println!("peak shift from BF16 BLAS: {:.2e} Ha ({:.3}%)", (p32 - p16).abs(), 100.0 * (p32 - p16).abs() / p32);
    println!("\nspectral observables are far more tolerant of low-precision BLAS than");
    println!("pointwise trajectories — resonance positions are set by the Hamiltonian,");
    println!("which the SCF refresh keeps clean at FP64.");
    Ok(())
}

//! The divide-and-conquer electronic solver — the "DC" in DCMESH.
//!
//! Solves a multi-well ground state two ways: globally (Chebyshev-filtered
//! subspace iteration over the whole mesh) and by divide-and-conquer
//! (locally dense solves on buffered domains, globally sparse assembly
//! through partition weights), then shows the §II-C scaling argument as
//! an operation count.
//!
//! ```text
//! cargo run --release --example divide_and_conquer
//! ```

use dcmesh_lfd::divide::{
    dc_ground_state, dc_operation_count, decompose, well_per_domain_potential, DcConfig,
};
use dcmesh_lfd::eigensolve::lowest_eigenpairs;
use dcmesh_lfd::Mesh3;

fn main() {
    let mesh = Mesh3::cubic(12, 0.8);
    let cfg = DcConfig { divisions: 2, buffer: 2, states_per_domain: 2, solver_iterations: 250 };
    let vloc = well_per_domain_potential(&mesh, &cfg, 2.0, 1.2);
    let n_elec = 16;

    println!(
        "system: {} mesh points, {} Gaussian wells, {n_elec} electrons",
        mesh.len(),
        cfg.divisions.pow(3)
    );

    let domains = decompose(&mesh, &cfg);
    println!(
        "decomposition: {} domains, core {}^3 + buffer {} -> local boxes {}^3",
        domains.len(),
        domains[0].core_size[0],
        cfg.buffer,
        domains[0].sub_mesh.nx
    );

    println!("\nglobal solve (CheFSI over the full mesh)...");
    let global = lowest_eigenpairs(&mesh, &vloc, n_elec / 2, 300, 1e-10, None);
    let global_band: f64 = global.eigenvalues.iter().map(|e| 2.0 * e).sum();
    println!(
        "  lowest eigenvalues: {:?}",
        global.eigenvalues.iter().map(|e| format!("{e:.3}")).collect::<Vec<_>>()
    );
    println!("  band energy: {global_band:.4} Ha ({} iterations)", global.iterations);

    println!("\ndivide-and-conquer solve...");
    let dc = dc_ground_state(&mesh, &vloc, n_elec, &cfg);
    println!(
        "  domain-0 local spectrum: {:?}",
        dc.local[0].eigenvalues.iter().map(|e| format!("{e:.3}")).collect::<Vec<_>>()
    );
    println!("  Fermi level: {:.4} Ha", dc.fermi);
    println!("  band energy: {:.4} Ha", dc.band_energy);
    println!("  electrons assembled: {:.6}", dc.electrons);
    println!(
        "  DC vs global band energy: {:.2}% relative deviation",
        100.0 * (dc.band_energy - global_band).abs() / global_band.abs()
    );

    println!("\nscaling (H-application point-updates, same iteration budget):");
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "mesh", "DC ops", "global ops", "ratio"
    );
    for (n, d, states) in [(12usize, 2usize, 32usize), (24, 4, 256), (48, 8, 2048), (96, 16, 16384)] {
        let m = Mesh3::cubic(n, 0.8);
        let c = DcConfig { divisions: d, ..cfg };
        let (dc_ops, gl_ops) = dc_operation_count(&m, &c, states);
        println!(
            "{:>7}^3 {:>14.3e} {:>14.3e} {:>8.1}x",
            n,
            dc_ops,
            gl_ops,
            gl_ops / dc_ops
        );
    }
    println!("\nfixed-size local problems make DC linear in system size while the");
    println!("global solve grows quadratically (N_orb tracks N_grid) — the paper's");
    println!("§II-C scalability claim in one table.");
}

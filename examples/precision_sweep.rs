//! Precision sweep: the paper's accuracy experiment in miniature.
//!
//! Runs the same simulation under every BLAS compute mode and reports
//! each observable's deviation from the FP32 reference — a console
//! version of Figures 1 and 2.
//!
//! ```text
//! cargo run --release --example precision_sweep
//! ```

use dcmesh::analysis::{DeviationSeries, Metric};
use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::runner::run_simulation;
use mkl_lite::{with_compute_mode, ComputeMode};

fn main() -> Result<(), dcmesh::RunError> {
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.total_qd_steps = 400;
    cfg.qd_steps_per_md = 200;

    println!("reference run (FP32)...");
    let reference = with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))?;

    println!(
        "\n{:<12} {:>14} {:>14} {:>14}   (max |deviation from FP32|)",
        "mode", "nexc", "javg", "ekin [Ha]"
    );
    for mode in ComputeMode::ALTERNATIVE {
        let run = with_compute_mode(mode, || run_simulation::<f32>(&cfg))?;
        let dev = |metric: Metric| {
            DeviationSeries::build(metric, &run.records, &reference.records).max_abs()
        };
        println!(
            "{:<12} {:>14.6e} {:>14.6e} {:>14.6e}",
            mode.label(),
            dev(Metric::Nexc),
            dev(Metric::Javg),
            dev(Metric::Ekin),
        );
    }

    println!("\nexpected ordering (paper Fig. 1): BF16 worst, then TF32/BF16x2, BF16x3 ~ FP32;");
    println!("Complex_3m differs only through rounding-path changes.");
    Ok(())
}

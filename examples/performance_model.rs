//! Performance model walk-through: Figure 3 and Table VI at paper scale.
//!
//! Prices the full 40- and 135-atom systems on the Xe-HPC device model —
//! no wave-function arithmetic is executed — and prints a unitrace-style
//! kernel dump for the 135-atom FP32 run.
//!
//! ```text
//! cargo run --release --example performance_model
//! ```

use dcmesh::perf::{figure3a, figure3b, table6, unitrace_500_steps, FIG3B_ORBITALS};
use dcmesh_lfd::schedule::{LfdPrecision, SystemShape};
use mkl_lite::ComputeMode;

fn main() {
    println!("== Figure 3a: time for 500 QD steps (modelled, one Max 1550 stack) ==");
    for (name, shape) in [("40 atoms", SystemShape::pto40()), ("135 atoms", SystemShape::pto135())] {
        println!("\n  {name}:");
        for p in figure3a(shape) {
            println!("    {:<12} {:>10.1} s", p.label, p.seconds_500_steps);
        }
    }

    println!("\n== Figure 3b: BLAS speedup vs FP32, 40-atom remap_occ sweep ==");
    print!("  {:<12}", "mode");
    for n in FIG3B_ORBITALS {
        print!(" {:>9}", format!("N={n}"));
    }
    println!();
    for mode in ComputeMode::ALTERNATIVE {
        print!("  {:<12}", mode.label());
        for p in figure3b(mode) {
            print!(" {:>9.2}", p.speedup);
        }
        println!();
    }

    println!("\n== Table VI: max observed vs theoretical speedup ==");
    for row in table6() {
        println!(
            "  {:<12} observed {:>5.2}x   theoretical {:>6.2}x",
            row.mode.label(),
            row.max_observed,
            row.theoretical
        );
    }

    println!("\n== unitrace-style dump: 135 atoms, FP32, 500 QD steps ==");
    let tracer = unitrace_500_steps(SystemShape::pto135(), LfdPrecision::Fp32(ComputeMode::Standard));
    println!("{}", tracer.dump());
}

//! `MKL_VERBOSE`-style BLAS call inspection (the artifact A3 workflow).
//!
//! Runs a handful of QD steps with call recording on and prints the
//! per-call log — routine, op letters, m/n/k, compute mode, and (with the
//! device model installed) the modelled GPU time — then the per-routine
//! summary the paper builds Tables VI/VII from.
//!
//! ```text
//! cargo run --release --example verbose_blas
//! MKL_BLAS_COMPUTE_MODE=FLOAT_TO_TF32 cargo run --release --example verbose_blas
//! ```

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::runner::run_simulation;
use mkl_lite::verbose;

fn main() {
    // Install the Max 1550 device model so every call also gets a
    // modelled device time, like unitrace + MKL_VERBOSE together.
    xe_gpu::install_default_model();

    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.total_qd_steps = 3;
    cfg.qd_steps_per_md = 3;

    verbose::clear();
    verbose::set_recording(true);
    run_simulation::<f32>(&cfg).expect("run");
    verbose::set_recording(false);

    let calls = verbose::drain();
    println!("recorded {} BLAS calls (3 QD steps + initial SCF):\n", calls.len());
    for c in calls.iter().take(30) {
        println!("  {}", c.to_verbose_line());
    }
    if calls.len() > 30 {
        println!("  ... {} more", calls.len() - 30);
    }

    println!("\nper-routine summary:");
    for (routine, s) in verbose::summarize(&calls) {
        println!(
            "  {:<8} calls {:>5}  mean {:>10.3} ms  total {:>10.3} ms",
            routine,
            s.calls,
            s.mean_seconds() * 1e3,
            s.total_seconds * 1e3
        );
    }

    // The QD-step calls alone: exactly 9 per step, as the artifact says.
    let qd_calls: Vec<_> = calls.iter().filter(|c| c.routine == "CGEMM").collect();
    println!(
        "\nCGEMM calls from the LFD loop: {} over 3 QD steps ({} per step)",
        qd_calls.len(),
        qd_calls.len() / 3
    );
}

//! The paper's accuracy study (Figures 1 and 2) at laptop scale.
//!
//! These tests verify the *qualitative claims* of §V on real emergent
//! numerics — the deviations are produced by genuinely propagating wave
//! functions through BF16/TF32/3M-emulated CGEMMs, not synthesised:
//!
//! * deviations from FP32 are nonzero for every alternative mode and grow
//!   over the simulation;
//! * the accuracy ordering is BF16 worst, then TF32, BF16x2, with BF16x3
//!   comparable to FP32;
//! * relative deviations stay at the ~1% level ("roughly equivalent to
//!   each other, in the order of 1%");
//! * the FP64 SCF refresh is what keeps drift bounded (ablation).

use dcmesh::analysis::{DeviationSeries, Metric};
use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::runner::{run_simulation, RunResult};
use mkl_lite::{with_compute_mode, ComputeMode};

/// The accuracy deck: long enough for drift to develop, small enough for
/// CI. The laser keeps pumping for the whole run so the dynamics stays
/// "highly dynamical" as in the paper.
fn accuracy_config() -> RunConfig {
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.mesh_points = 10;
    cfg.n_orb = 10;
    cfg.n_occ = 5;
    cfg.total_qd_steps = 300;
    cfg.qd_steps_per_md = 150;
    cfg.laser_duration_fs = 0.2;
    cfg.laser_amplitude = 0.35;
    cfg
}

fn run_mode(cfg: &RunConfig, mode: ComputeMode) -> RunResult {
    with_compute_mode(mode, || run_simulation::<f32>(cfg)).expect("run")
}

#[test]
fn figure1_deviation_ordering_and_growth() {
    let cfg = accuracy_config();
    let reference = run_mode(&cfg, ComputeMode::Standard);
    // One run per mode, reused across all three metrics.
    let bf16_run = run_mode(&cfg, ComputeMode::FloatToBf16);
    let tf32_run = run_mode(&cfg, ComputeMode::FloatToTf32);
    let x3_run = run_mode(&cfg, ComputeMode::FloatToBf16x3);

    for metric in Metric::FIGURE1 {
        let dev = |run: &RunResult| {
            DeviationSeries::build(metric, &run.records, &reference.records).max_abs()
        };
        let bf16 = dev(&bf16_run);
        let tf32 = dev(&tf32_run);
        let x3 = dev(&x3_run);
        assert!(bf16 > 0.0, "{}: BF16 identical to FP32", metric.name());
        // Paper: BF16 deviates most; TF32 "contains slightly higher
        // precision than BF16 and this is also revealed in our results";
        // BF16x3 is "the most accurate".
        assert!(
            bf16 > tf32,
            "{}: BF16 ({bf16:e}) not worse than TF32 ({tf32:e})",
            metric.name()
        );
        assert!(
            bf16 > 10.0 * x3,
            "{}: BF16 ({bf16:e}) not clearly worse than BF16x3 ({x3:e})",
            metric.name()
        );
    }
}

#[test]
fn figure1_deviations_grow_over_time() {
    let cfg = accuracy_config();
    let reference = run_mode(&cfg, ComputeMode::Standard);
    let bf16 = run_mode(&cfg, ComputeMode::FloatToBf16);
    for metric in [Metric::Nexc, Metric::Ekin] {
        let series = DeviationSeries::build(metric, &bf16.records, &reference.records);
        assert!(
            series.grows_over_time(),
            "{}: BF16 deviation does not grow over the run",
            metric.name()
        );
    }
}

#[test]
fn relative_deviations_stay_small() {
    // Paper §V-A: "The deviations relative to the absolute values of each
    // metric are roughly equivalent to each other, in the order of 1%."
    let cfg = accuracy_config();
    let reference = run_mode(&cfg, ComputeMode::Standard);
    let bf16 = run_mode(&cfg, ComputeMode::FloatToBf16);
    let ekin = DeviationSeries::build(Metric::Ekin, &bf16.records, &reference.records);
    // Allow up to a few percent at this scale; the point is boundedness.
    assert!(
        ekin.max_relative() < 0.05,
        "BF16 kinetic-energy relative deviation {}",
        ekin.max_relative()
    );
}

#[test]
fn figure2_log_deviation_series_is_well_formed() {
    let cfg = accuracy_config();
    let reference = run_mode(&cfg, ComputeMode::Standard);
    let tf32 = run_mode(&cfg, ComputeMode::FloatToTf32);
    let series = DeviationSeries::build(Metric::Javg, &tf32.records, &reference.records);
    let log = series.log10_series(1e-18);
    assert_eq!(log.len(), series.points.len());
    assert!(log.iter().all(|&(t, y)| t >= 0.0 && y.is_finite()));
    // Late-time deviations sit well above the floor.
    let tail_max = log[log.len() / 2..].iter().map(|&(_, y)| y).fold(f64::MIN, f64::max);
    assert!(tail_max > -17.0, "deviation never rose above the floor: {tail_max}");
}

#[test]
fn complex_3m_deviates_least_among_alternatives() {
    // 3M keeps full FP32 element precision; only the rounding path
    // changes, so its per-step error seed is ~eps_f32 rather than
    // ~2^-8. The comparison is made over the early part of the run,
    // before trajectory divergence (which amplifies *any* seed at the
    // same Lyapunov rate and eventually saturates every mode to a
    // similar level — a finite-size effect far stronger in this
    // laptop-scale deck than in the paper's 1024-orbital system).
    let cfg = accuracy_config();
    let reference = run_mode(&cfg, ComputeMode::Standard);
    let c3m = run_mode(&cfg, ComputeMode::Complex3m);
    let bf16 = run_mode(&cfg, ComputeMode::FloatToBf16);
    let horizon = 100;
    let early = |r: &RunResult| {
        DeviationSeries::build(
            Metric::Ekin,
            &r.records[..horizon],
            &reference.records[..horizon],
        )
        .max_abs()
    };
    let d3m = early(&c3m);
    let dbf = early(&bf16);
    assert!(d3m > 0.0, "3M bit-identical to standard — path not taken?");
    assert!(d3m < dbf / 3.0, "3M ({d3m:e}) not well below BF16 ({dbf:e})");
}

#[test]
fn ablation_scf_refresh_bounds_drift() {
    // The paper's claimed mechanism: without the FP64 SCF refresh,
    // low-precision error accumulates monotonically; with it, each
    // 500-step burst starts clean. Compare the orthonormality drift the
    // refresh absorbs under frequent vs infrequent refreshes.
    let mut frequent = accuracy_config();
    frequent.total_qd_steps = 240;
    frequent.qd_steps_per_md = 60;
    let mut rare = frequent.clone();
    rare.qd_steps_per_md = 240;

    let r_freq = run_mode(&frequent, ComputeMode::FloatToBf16);
    let r_rare = run_mode(&rare, ComputeMode::FloatToBf16);

    let max_freq = r_freq.scf_drift.iter().cloned().fold(0.0f64, f64::max);
    let max_rare = r_rare.scf_drift.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max_rare > max_freq,
        "longer bursts must accumulate more drift: rare {max_rare:e} vs frequent {max_freq:e}"
    );
}

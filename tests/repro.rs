//! Bit-reproducibility gate: the determinism and SDC-defense claims of
//! the stack, asserted end to end.
//!
//! * A full supervised run is **bit-identical across rayon thread
//!   counts** — every order-sensitive sum rides the fixed-shape
//!   reduction tree, so scheduling never changes a result.
//! * A degraded 2-rank fleet and a full 4-rank fleet produce
//!   **bit-identical cross-rank merges** — the domain-id-keyed
//!   reduction tree makes the merge independent of fleet shape.
//! * An injected **silent bit flip** (exponent corruption invisible to
//!   NaN/Inf checks) is detected by the sampled ABFT checksums, rolled
//!   back, and retried at the same mode — recovering bit-identically to
//!   a clean run.
//! * `verify_bursts` replay verification passes on clean runs without
//!   perturbing the result.
//!
//! The fault injector and the ABFT sampler are process-global, so every
//! test that executes GEMMs in-process serialises on one mutex (the
//! shard test spawns worker processes instead and needs no lock).

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::shard::ShardConfig;
use dcmesh::supervisor::burst_verification_counter;
use dcmesh::{run_coordinator, run_supervised, SupervisedRun, SupervisorConfig};
use mkl_lite::{install_bit_flip_plan, BitFlipPlan, ComputeMode};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

static GEMM_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = GEMM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    mkl_lite::clear_fault_plan();
    mkl_lite::clear_abft();
    guard
}

fn tiny_deck() -> RunConfig {
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.mesh_points = 10;
    cfg.n_orb = 8;
    cfg.n_occ = 4;
    cfg.total_qd_steps = 60;
    cfg.qd_steps_per_md = 20;
    cfg
}

/// Bit patterns of everything a run records: per-step observables plus
/// the per-burst drift figures. Two runs agree iff these vectors agree.
fn run_bits(run: &SupervisedRun) -> Vec<u64> {
    let mut bits = Vec::new();
    for r in &run.result.records {
        bits.extend([r.ekin, r.epot, r.etot, r.eexc, r.nexc, r.javg].map(f64::to_bits));
    }
    bits.extend(run.result.scf_drift.iter().map(|v| v.to_bits()));
    bits.extend(run.result.shadow_drift.iter().map(|v| v.to_bits()));
    bits.extend(run.result.ion_temperature.iter().map(|v| v.to_bits()));
    bits
}

fn supervised(sup: &SupervisorConfig) -> SupervisedRun {
    run_supervised::<f32>(&tiny_deck(), ComputeMode::Standard, sup).expect("supervised run")
}

#[test]
fn full_supervised_run_is_bit_identical_across_thread_counts() {
    let _g = locked();
    let mut all_bits = Vec::new();
    for threads in [1usize, 4] {
        let dir = std::env::temp_dir()
            .join(format!("dcmesh-repro-threads-{threads}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clear stale checkpoint dir");
        }
        let sup =
            SupervisorConfig { checkpoint_dir: Some(dir.clone()), ..SupervisorConfig::default() };
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build rayon pool");
        let run = pool.install(|| supervised(&sup));
        assert_eq!(run.escalations.len(), 0, "tiny deck must run clean at {threads} threads");
        assert!(!run.result.records.is_empty());

        // The on-disk burst checkpoints, byte for byte.
        let mut cks: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
            .expect("checkpoint dir")
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "ck"))
            .map(|p| {
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                (name, std::fs::read(&p).expect("read checkpoint"))
            })
            .collect();
        cks.sort();
        assert!(!cks.is_empty(), "supervised run wrote no checkpoints");
        std::fs::remove_dir_all(&dir).ok();
        all_bits.push((threads, run_bits(&run), cks));
    }
    let (_, ref baseline, ref base_cks) = all_bits[0];
    for (threads, bits, cks) in &all_bits[1..] {
        assert_eq!(
            bits, baseline,
            "run bits diverged between 1 and {threads} rayon threads — an order-sensitive \
             sum escaped the fixed-shape reduction tree"
        );
        assert_eq!(
            cks, base_cks,
            "checkpoint bytes diverged between 1 and {threads} rayon threads"
        );
    }
}

#[test]
fn degraded_two_rank_fleet_merges_bit_identical_to_four_rank_fleet() {
    // No lock: all GEMMs happen in spawned worker processes.
    let fleet = |name: &str, ranks: usize| {
        let dir =
            std::env::temp_dir().join(format!("dcmesh-repro-{name}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clear stale run dir");
        }
        let mut cfg = ShardConfig::new(tiny_deck(), ranks, 4, dir);
        cfg.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_dcmesh-shard")));
        cfg.heartbeat_interval = Duration::from_millis(25);
        cfg.heartbeat_timeout = Duration::from_millis(400);
        cfg.poll_interval = Duration::from_millis(20);
        cfg.max_wall = Some(Duration::from_secs(120));
        let report = run_coordinator(&cfg).expect("coordinator");
        std::fs::remove_dir_all(&cfg.run_dir).ok();
        assert_eq!(report.failed_domains(), Vec::<usize>::new());
        report
    };

    let full = fleet("full", 4);
    let degraded = fleet("half", 2);

    // Per-domain observables are fleet-shape-independent...
    for (a, b) in full.domains.iter().zip(&degraded.domains) {
        assert_eq!(a.ekin_bits, b.ekin_bits, "domain {} ekin diverged", a.domain);
        assert_eq!(a.nexc_bits, b.nexc_bits, "domain {} nexc diverged", a.domain);
        assert_eq!(a.etot_bits, b.etot_bits, "domain {} etot diverged", a.domain);
    }
    // ...and so is the cross-rank reduction-tree merge.
    assert_eq!(
        full.merged_bits(),
        degraded.merged_bits(),
        "fleet-level merge must be keyed by domain id, not fleet shape"
    );
    // The 2-rank fleet genuinely multiplexed domains over fewer ranks.
    assert!(degraded.domains.iter().all(|d| d.rank < 2));
}

#[test]
fn injected_bit_flip_is_detected_and_recovery_is_bit_identical() {
    let _g = locked();
    let sup = SupervisorConfig { abft_check_period: Some(1), ..SupervisorConfig::default() };

    // Baseline, and the GEMM call budget of one clean run.
    let calls_before = mkl_lite::fault::gemm_call_count();
    let clean = supervised(&sup);
    let calls_per_run = mkl_lite::fault::gemm_call_count() - calls_before;
    assert_eq!(clean.sdc_recoveries, 0);
    assert!(calls_per_run > 16, "deck too small to place a mid-run flip");

    // Corrupt one GEMM output mid-run: flip a high exponent bit (finite,
    // orders of magnitude off — invisible to the NaN/Inf health checks).
    // The flip fires once; the never-reset call counter means the
    // rollback replay re-executes the call cleanly.
    //
    // A flip on a *random* output element is not always detectable: one
    // that shrinks an already-small f32 element sits inside the ABFT
    // rounding envelope, which is exactly the documented coverage
    // boundary (those are `verify_bursts` territory). So scan a few
    // mid-run call indices and assert on the first flip the checksum
    // does catch — for a fixed deck and seed the scan is deterministic.
    let flipped = (0..12)
        .find_map(|j| {
            install_bit_flip_plan(&BitFlipPlan::new(7).with_flip(calls_per_run / 2 + j * 7, 61));
            let run = supervised(&sup);
            mkl_lite::clear_fault_plan();
            (run.sdc_recoveries >= 1).then_some(run)
        })
        .expect("no scanned exponent flip was caught as silent corruption");
    assert_eq!(
        flipped.escalations.len(),
        0,
        "SDC recovery must retry the same mode, not escalate precision"
    );
    assert_eq!(flipped.final_mode, clean.final_mode);
    assert_eq!(
        run_bits(&flipped),
        run_bits(&clean),
        "post-rollback replay must be bit-identical to the uncorrupted run"
    );
}

#[test]
fn verify_bursts_replay_passes_clean_and_preserves_bits() {
    let _g = locked();
    let plain = supervised(&SupervisorConfig::default());

    let verified_before = burst_verification_counter().get();
    let sup = SupervisorConfig { verify_bursts: Some(1), ..SupervisorConfig::default() };
    let verified = supervised(&sup);

    assert!(
        burst_verification_counter().get() >= verified_before + 3,
        "every burst of the 3-burst run must be replay-verified"
    );
    assert_eq!(verified.sdc_recoveries, 0, "clean replays must not flag corruption");
    assert_eq!(
        run_bits(&verified),
        run_bits(&plain),
        "replay verification is an observer — it must not change the result"
    );
}

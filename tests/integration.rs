//! Cross-crate integration tests: deck → runner → analysis pipeline,
//! device-model installation, and the no-code-change mode switching the
//! paper's methodology rests on.

use dcmesh::analysis::{DeviationSeries, Metric};
use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::output::{read_csv, write_csv};
use dcmesh::runner::run_simulation;
use mkl_lite::{verbose, with_compute_mode, ComputeMode};

fn tiny() -> RunConfig {
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.mesh_points = 10;
    cfg.n_orb = 8;
    cfg.n_occ = 4;
    cfg.total_qd_steps = 40;
    cfg.qd_steps_per_md = 20;
    cfg.laser_duration_fs = 0.02;
    cfg.laser_amplitude = 0.4;
    cfg
}

#[test]
fn full_pipeline_deck_to_deviations() {
    let deck = "
        system = pto40-small
        mesh = 10
        norb = 8
        nocc = 4
        total_qd_steps = 40
        qd_steps_per_md = 20
        laser_duration_fs = 0.02
        laser_amplitude = 0.4
    ";
    let cfg = RunConfig::parse(deck).expect("deck parses");
    let reference =
        with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg)).expect("run");
    let bf16 =
        with_compute_mode(ComputeMode::FloatToBf16, || run_simulation::<f32>(&cfg)).expect("run");

    for metric in Metric::FIGURE1 {
        let series = DeviationSeries::build(metric, &bf16.records, &reference.records);
        assert!(
            series.max_abs() > 0.0,
            "{} shows no BF16 deviation at all",
            metric.name()
        );
        // Scale against the metric's peak magnitude (pointwise relative
        // error is ill-posed for observables passing through zero).
        let scale = reference
            .records
            .iter()
            .map(|o| metric.get(o).abs())
            .fold(0.0f64, f64::max)
            .max(1e-30);
        assert!(
            series.max_abs() / scale < 0.2,
            "{} BF16 deviation implausibly large: {} of scale {scale}",
            metric.name(),
            series.max_abs()
        );
    }
}

#[test]
fn csv_roundtrip_preserves_run_record() {
    let cfg = tiny();
    let run =
        with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg)).expect("run");
    let mut buf = Vec::new();
    write_csv(&mut buf, &run.records).expect("write");
    let back = read_csv(std::str::from_utf8(&buf).expect("utf8")).expect("parse");
    assert_eq!(back.len(), run.records.len());
    for (a, b) in back.iter().zip(&run.records) {
        assert_eq!(a.step, b.step);
        assert!((a.nexc - b.nexc).abs() <= 1e-10 * (1.0 + b.nexc.abs()));
    }
}

#[test]
fn device_model_prices_every_blas_call() {
    xe_gpu::install_default_model();
    let cfg = tiny();
    verbose::clear();
    verbose::set_recording(true);
    with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg)).expect("run");
    verbose::set_recording(false);
    let calls = verbose::drain();
    mkl_lite::device::clear_device_model();

    assert!(!calls.is_empty());
    let cgemms: Vec<_> = calls.iter().filter(|c| c.routine == "CGEMM").collect();
    assert_eq!(
        cgemms.len(),
        cfg.total_qd_steps * 9,
        "expected 9 CGEMMs per QD step"
    );
    for c in &cgemms {
        assert!(c.device_seconds.is_some(), "call missing modelled device time");
        assert!(c.device_seconds.unwrap() > 0.0);
    }
}

#[test]
fn identical_runs_are_bitwise_reproducible() {
    // Determinism underpins the whole deviation methodology: the same
    // deck under the same mode must reproduce exactly.
    let cfg = tiny();
    let a =
        with_compute_mode(ComputeMode::FloatToTf32, || run_simulation::<f32>(&cfg)).expect("run");
    let b =
        with_compute_mode(ComputeMode::FloatToTf32, || run_simulation::<f32>(&cfg)).expect("run");
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.ekin.to_bits(), y.ekin.to_bits(), "step {}", x.step);
        assert_eq!(x.nexc.to_bits(), y.nexc.to_bits(), "step {}", x.step);
        assert_eq!(x.javg.to_bits(), y.javg.to_bits(), "step {}", x.step);
    }
}

#[test]
fn fp64_run_matches_fp32_closely_but_not_exactly() {
    let cfg = tiny();
    let r32 =
        with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg)).expect("run");
    let r64 =
        with_compute_mode(ComputeMode::Standard, || run_simulation::<f64>(&cfg)).expect("run");
    let last32 = r32.last().expect("records");
    let last64 = r64.last().expect("records");
    let rel = (last32.ekin - last64.ekin).abs() / last64.ekin.abs().max(1e-30);
    assert!(rel < 1e-3, "FP32 vs FP64 kinetic energy differs by {rel}");
    assert_ne!(last32.ekin, last64.ekin, "precision change had no effect at all");
}

#[test]
fn paper_full_scale_decks_validate() {
    // The full-scale decks must construct (we never execute them on CPU,
    // but the performance model consumes their dimensions).
    for preset in [SystemPreset::Pto40, SystemPreset::Pto135] {
        let cfg = RunConfig::preset(preset);
        cfg.validate().expect("paper deck invalid");
        let p = cfg.lfd_params();
        p.validate();
        assert_eq!(cfg.total_qd_steps, 21_000);
    }
}

#[test]
fn shipped_config_files_parse() {
    for name in ["pto40.in", "pto135.in", "pto40-small.in", "pto135-small.in"] {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs/");
        let text = std::fs::read_to_string(format!("{path}{name}"))
            .unwrap_or_else(|e| panic!("missing config {name}: {e}"));
        let cfg = RunConfig::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        cfg.validate().unwrap();
    }
}

#[test]
fn schedule_matches_executed_blas_calls_exactly() {
    // The device model prices the schedule; the propagator executes the
    // numerics. Both must describe the *same* nine BLAS calls — same
    // order, shapes and per-site compute modes — or the performance
    // figures would be priced for a different program than the one that
    // produced the accuracy figures.
    use dcmesh_lfd::policy::PrecisionPolicy;
    use dcmesh_lfd::propagator::{qd_step_with_policy, QdScratch};
    use dcmesh_lfd::schedule::{qd_step_schedule_with_policy, LfdPrecision, SystemShape};
    use dcmesh_lfd::state::cosine_potential;
    use dcmesh_lfd::{LaserPulse, LfdParams, LfdState, Mesh3};
    use xe_gpu::KernelDesc;

    let params = LfdParams {
        mesh: Mesh3::cubic(9, 0.6),
        n_orb: 6,
        n_occ: 3,
        dt: 0.02,
        vnl_strength: 0.2,
        taylor_order: 4,
        laser: LaserPulse::off(),
        induced_coupling: 0.0,
    };
    let policy = PrecisionPolicy::fast_propagation(ComputeMode::FloatToBf16);

    // Execute one QD step with call recording.
    let mut st = LfdState::<f32>::initialize(&params, cosine_potential(&params.mesh, 0.2));
    let mut scratch = QdScratch::new(&params);
    with_compute_mode(ComputeMode::Standard, || {
        qd_step_with_policy(&params, &mut st, &mut scratch, &policy); // warm-up
        verbose::clear();
        verbose::set_recording(true);
        qd_step_with_policy(&params, &mut st, &mut scratch, &policy);
        verbose::set_recording(false);
    });
    let calls = verbose::drain();

    // The schedule's GEMM entries, in order.
    let shape = SystemShape::of(&params);
    let schedule = qd_step_schedule_with_policy(
        shape,
        LfdPrecision::Fp32(ComputeMode::Standard),
        &policy,
    );
    let gemms: Vec<_> = schedule
        .iter()
        .filter_map(|k| match k {
            KernelDesc::Gemm(name, desc) => Some((*name, *desc)),
            _ => None,
        })
        .collect();

    assert_eq!(calls.len(), gemms.len(), "call count vs schedule");
    for (i, (call, (name, desc))) in calls.iter().zip(&gemms).enumerate() {
        assert_eq!(
            (call.m, call.n, call.k),
            (desc.m, desc.n, desc.k),
            "call {i} ({name}): executed shape differs from schedule"
        );
        assert_eq!(
            call.mode, desc.mode,
            "call {i} ({name}): executed mode differs from schedule"
        );
    }
}

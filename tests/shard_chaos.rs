//! Chaos tests for the multi-rank sharded runner: deterministic rank
//! kills mid-burst, heartbeat-timeout detection, checkpoint-replay
//! recovery, and graceful degradation — asserted against an
//! uninterrupted fleet for bit-exact observables.
//!
//! These spawn real worker processes (the `dcmesh-shard` binary Cargo
//! builds for this package), so they exercise the genuine failure path:
//! a `process::exit` mid-burst, not a simulated error return.

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::shard::{RankKillPlan, ShardConfig, ShardReport};
use dcmesh::{run_coordinator, RunError, ShardError};
use std::path::PathBuf;
use std::time::Duration;

/// Small enough that a 4-rank fleet finishes in seconds, large enough
/// for 3 bursts per domain (so a kill at burst 1 has a burst-0
/// checkpoint to resume from and a burst to replay).
fn tiny_deck() -> RunConfig {
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.mesh_points = 10;
    cfg.n_orb = 8;
    cfg.n_occ = 4;
    cfg.total_qd_steps = 60;
    cfg.qd_steps_per_md = 20;
    cfg
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcmesh-chaos-{}-{}", name, std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale test dir");
    }
    dir
}

/// Aggressive-but-safe timings: heartbeats every 25ms, death after
/// 400ms of silence, fast respawn.
fn fleet_config(name: &str, kill: &str) -> ShardConfig {
    let mut cfg = ShardConfig::new(tiny_deck(), 4, 4, test_dir(name));
    cfg.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_dcmesh-shard")));
    cfg.heartbeat_interval = Duration::from_millis(25);
    cfg.heartbeat_timeout = Duration::from_millis(400);
    cfg.poll_interval = Duration::from_millis(20);
    cfg.backoff_base = Duration::from_millis(50);
    cfg.max_wall = Some(Duration::from_secs(120));
    cfg.kill_plan = RankKillPlan::parse(kill).expect("kill spec");
    cfg
}

fn run_fleet(cfg: &ShardConfig) -> ShardReport {
    let report = run_coordinator(cfg).expect("coordinator");
    assert_eq!(report.failed_domains(), Vec::<usize>::new(), "no domain may fail");
    assert_eq!(report.domains.len(), 4);
    report
}

#[test]
fn killed_rank_recovers_from_checkpoint_and_matches_uninterrupted_run() {
    // Reference: 4 ranks, 4 domains, nobody dies.
    let clean_cfg = fleet_config("clean", "");
    let clean = run_fleet(&clean_cfg);
    assert_eq!(clean.restarts, 0);
    assert_eq!(clean.heartbeat_misses, 0);
    for d in &clean.domains {
        assert_eq!(d.rank, d.domain, "initial assignment is deterministic");
        assert_eq!(d.incarnation, 0);
        assert_eq!(d.resumed_from_step, None);
        assert_eq!(d.final_step, 60);
    }

    // Chaos: rank 1 hard-exits at the start of its second burst — after
    // the burst-0 checkpoint (step 20), with burst 1 in flight.
    let chaos_cfg = fleet_config("kill", "1@1");
    let chaos = run_fleet(&chaos_cfg);
    assert!(chaos.heartbeat_misses >= 1, "death must be detected via heartbeat timeout");
    assert!(chaos.restarts >= 1, "the dead rank must be respawned");
    assert_eq!(chaos.degraded_ranks, Vec::<usize>::new(), "one kill is within budget");

    let dom1 = &chaos.domains[1];
    assert_eq!(dom1.rank, 1, "the respawned rank itself finishes its domain");
    assert_eq!(dom1.incarnation, 1, "finished by the second incarnation");
    assert_eq!(
        dom1.resumed_from_step,
        Some(20),
        "recovery resumes from the shared burst-0 checkpoint and replays the killed burst"
    );

    // The whole point of deterministic recovery: every domain's final
    // observables are bit-identical to the uninterrupted fleet's.
    for (a, b) in clean.domains.iter().zip(&chaos.domains) {
        assert_eq!(a.final_step, b.final_step, "domain {}", a.domain);
        assert_eq!(a.ekin_bits, b.ekin_bits, "ekin bits diverged in domain {}", a.domain);
        assert_eq!(a.nexc_bits, b.nexc_bits, "nexc bits diverged in domain {}", a.domain);
        assert_eq!(a.etot_bits, b.etot_bits, "etot bits diverged in domain {}", a.domain);
    }

    // The coordination log tells the recovery story.
    let log = std::fs::read_to_string(chaos_cfg.run_dir.join("coord.log")).expect("coord.log");
    assert!(log.contains("\"heartbeat_miss\""), "log records the heartbeat miss:\n{log}");
    let spawns = log.matches("\"rank_spawn\"").count();
    assert!(spawns >= 5, "4 initial spawns + >=1 respawn, got {spawns}:\n{log}");
    assert!(log.contains("\"run_complete\""));

    // And the persisted report round-trips.
    let text = std::fs::read_to_string(dcmesh::shard::report_path(&chaos_cfg.run_dir))
        .expect("report.json");
    let parsed = ShardReport::parse(&text).expect("parse report");
    assert_eq!(parsed.domains[1].etot_bits, dom1.etot_bits);
    assert_eq!(parsed.restarts, chaos.restarts);

    std::fs::remove_dir_all(&clean_cfg.run_dir).ok();
    std::fs::remove_dir_all(&chaos_cfg.run_dir).ok();
}

#[test]
fn respawn_budget_exhaustion_degrades_to_fewer_ranks() {
    // Rank 1 dies at its first burst in *every* incarnation, with a
    // budget of one respawn: spawn → die → respawn → die → degraded.
    let mut cfg = fleet_config("degrade", "1@0*");
    cfg.max_respawns = 1;
    let report = run_fleet(&cfg);

    assert_eq!(report.degraded_ranks, vec![1], "rank 1 exhausts its budget and is removed");
    assert!(report.heartbeat_misses >= 2, "both incarnations die");
    assert_eq!(report.restarts, 1, "exactly the budgeted respawn");
    for d in &report.domains {
        assert_ne!(d.rank, 1, "a surviving rank finishes every domain (incl. the released one)");
    }
    let r1 = report.ranks.iter().find(|r| r.rank == 1).expect("rank 1 summary");
    assert!(r1.degraded);
    assert_eq!(r1.incarnations, 2);

    let log = std::fs::read_to_string(cfg.run_dir.join("coord.log")).expect("coord.log");
    assert!(log.contains("\"rank_degraded\""), "log records the degradation:\n{log}");
    assert!(
        log.contains("\"domain_reassigned\""),
        "the degraded rank's claim returns to the queue:\n{log}"
    );

    std::fs::remove_dir_all(&cfg.run_dir).ok();
}

#[test]
fn invalid_rank_env_is_a_structured_error() {
    // Garbage DCMESH_RANK must fail loudly, not silently fall back to
    // rank 0 (which would corrupt multi-rank trace attribution). This
    // lives in the chaos binary because it mutates process environment:
    // the other tests here read it only in freshly spawned workers with
    // explicit overrides.
    std::env::set_var(dcmesh::DCMESH_RANK_ENV, "not-a-rank");
    let out = dcmesh::run_simulation::<f32>(&tiny_deck());
    std::env::remove_var(dcmesh::DCMESH_RANK_ENV);
    match out {
        Err(RunError::InvalidRank { value }) => assert_eq!(value, "not-a-rank"),
        other => panic!("expected InvalidRank, got {other:?}"),
    }
}

#[test]
fn coordinator_rejects_unworkable_configs_up_front() {
    let mut cfg = fleet_config("reject", "");
    cfg.n_domains = 2; // fewer domains than ranks
    match run_coordinator(&cfg) {
        Err(ShardError::InvalidConfig(_)) => {}
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    std::fs::remove_dir_all(&cfg.run_dir).ok();
}

#![allow(clippy::type_complexity)]

//! Offline API-subset shim for the `proptest` crate (see
//! `shims/README.md`).
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`]/[`prop_assert!`]/[`prop_oneof!`] macros, a [`Strategy`]
//! trait over numeric ranges, tuples, `prop_map`/`prop_flat_map`,
//! [`strategy::Just`], [`collection::vec`], [`sample::select`],
//! [`arbitrary::any`], and simple character-class string patterns.
//! Cases are generated from a per-test deterministic seed; there is no
//! shrinking and `proptest-regressions` files are ignored.

pub mod test_runner {
    use core::fmt;

    /// Per-test configuration (subset: case count).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// A failed property assertion.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator driving case generation (splitmix64).
    #[derive(Clone, Debug)]
    pub struct Rng64 {
        state: u64,
    }

    impl Rng64 {
        /// Seeds from a test name (FNV-1a), so every test gets a stable,
        /// distinct stream.
        pub fn from_name(name: &str) -> Rng64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Rng64 { state: h | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi]`.
        pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo <= hi);
            lo + self.below((hi - lo + 1) as u64) as usize
        }
    }
}

pub mod strategy {
    use super::test_runner::Rng64;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut Rng64) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng64) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut Rng64) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut Rng64) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Runtime choice between same-valued strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Fn(&mut Rng64) -> T>>,
    }

    impl<T> Union<T> {
        /// Builds from boxed generator closures.
        pub fn new(options: Vec<Box<dyn Fn(&mut Rng64) -> T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng64) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            (self.options[i])(rng)
        }
    }

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng64) -> $t {
                    let u = rng.unit_f64();
                    (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng64) -> $t {
                    let (a, b) = (*self.start() as f64, *self.end() as f64);
                    (a + rng.unit_f64() * (b - a)) as $t
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng64) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty range");
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng64) -> $t {
                    let (a, b) = (*self.start() as i128, *self.end() as i128);
                    let span = (b - a) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (a + v as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut Rng64) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// `&str` patterns act as string strategies. Supported shapes:
    /// `\PC{lo,hi}` (printable characters) and `[chars]{lo,hi}` with
    /// `a-z` ranges inside the class; anything else generates the
    /// pattern text verbatim.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut Rng64) -> String {
            match parse_pattern(self) {
                Some((pool, lo, hi)) => {
                    let len = rng.size_in(lo, hi);
                    (0..len).map(|_| pool[rng.below(pool.len() as u64) as usize]).collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let open = pat.rfind('{')?;
        let reps = pat.strip_suffix('}')?.get(open + 1..)?;
        let (lo, hi) = match reps.split_once(',') {
            Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
            None => {
                let n = reps.parse().ok()?;
                (n, n)
            }
        };
        let class = &pat[..open];
        let pool = if class == "\\PC" {
            // Printable (non-control) characters: ASCII plus a few
            // multi-byte code points to exercise UTF-8 handling.
            let mut p: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
            p.extend(['é', 'λ', '中', '🦀']);
            p
        } else {
            let inner = class.strip_prefix('[')?.strip_suffix(']')?;
            let chars: Vec<char> = inner.chars().collect();
            let mut p = Vec::new();
            let mut i = 0;
            while i < chars.len() {
                if i + 2 < chars.len() && chars[i + 1] == '-' {
                    let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
                    for c in a..=b {
                        p.extend(char::from_u32(c));
                    }
                    i += 3;
                } else {
                    p.push(chars[i]);
                    i += 1;
                }
            }
            p
        };
        if pool.is_empty() {
            return None;
        }
        Some((pool, lo, hi))
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::Rng64;

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Inclusive `(lo, hi)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Generates `Vec`s of `elem` values.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// A `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng64) -> Vec<S::Value> {
            let len = rng.size_in(self.lo, self.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::Rng64;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// A strategy choosing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng64) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::Rng64;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut Rng64) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng64) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng64) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng64) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespaced access (`prop::sample::select`, `prop::collection::vec`).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::Rng64::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                $crate::__proptest_bind!(__rng [] $($args)*);
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    ::std::panic!("proptest {} failed (case {}): {}", stringify!($name), __case, __e);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

// Argument-list muncher: splits `pat in strategy, pat in strategy, ...`
// on top-level commas (patterns are single token trees in practice:
// an identifier or a parenthesised tuple).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident [$($acc:tt)*]) => {
        $crate::__proptest_emit!($rng $($acc)*)
    };
    ($rng:ident [$($acc:tt)*] $pat:tt in $($rest:tt)*) => {
        $crate::__proptest_strat!($rng [$($acc)*] ($pat) [] $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_strat {
    ($rng:ident [$($acc:tt)*] ($pat:tt) [$($s:tt)*] , $($rest:tt)*) => {
        $crate::__proptest_bind!($rng [$($acc)* (($pat) [$($s)*])] $($rest)*)
    };
    ($rng:ident [$($acc:tt)*] ($pat:tt) [$($s:tt)*]) => {
        $crate::__proptest_bind!($rng [$($acc)* (($pat) [$($s)*])])
    };
    ($rng:ident [$($acc:tt)*] ($pat:tt) [$($s:tt)*] $t:tt $($rest:tt)*) => {
        $crate::__proptest_strat!($rng [$($acc)*] ($pat) [$($s)* $t] $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_emit {
    ($rng:ident $((($pat:tt) [$($s:tt)*]))*) => {
        $(let $pat = $crate::strategy::Strategy::generate(&($($s)*), &mut $rng);)*
    };
}

/// Asserts inside a `proptest!` body, failing the case (not panicking
/// directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __prop_assert_ok: bool = $cond;
        if !__prop_assert_ok {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l == *__r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let mut __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn ::std::ops::Fn(&mut $crate::test_runner::Rng64) -> _>,
        > = ::std::vec::Vec::new();
        $({
            let __s = $s;
            __options.push(::std::boxed::Box::new(move |__r: &mut $crate::test_runner::Rng64| {
                $crate::strategy::Strategy::generate(&__s, __r)
            }));
        })+
        $crate::strategy::Union::new(__options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec() {
        let mut rng = crate::test_runner::Rng64::from_name("t1");
        let s = (1usize..5, -1.0f64..1.0);
        for _ in 0..100 {
            let (n, x) = s.generate(&mut rng);
            assert!((1..5).contains(&n));
            assert!((-1.0..1.0).contains(&x));
        }
        let v = crate::collection::vec(any::<u8>(), 0..8).generate(&mut rng);
        assert!(v.len() < 8);
        let w = crate::collection::vec(0u32..3, 5usize).generate(&mut rng);
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn string_patterns() {
        let mut rng = crate::test_runner::Rng64::from_name("t2");
        for _ in 0..50 {
            let s = "[a-z_]{1,20}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 20);
            assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()), "{s:?}");
            let p = "\\PC{0,40}".generate(&mut rng);
            assert!(p.chars().count() <= 40);
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");
        }
    }

    #[test]
    fn flat_map_and_select() {
        let mut rng = crate::test_runner::Rng64::from_name("t3");
        let s = (1usize..4).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0.0f32..1.0, n))
        });
        for _ in 0..50 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
        let pick = crate::sample::select(vec![3, 5, 7]);
        for _ in 0..20 {
            assert!([3, 5, 7].contains(&pick.generate(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0u64..100, (a, b) in (0.0f64..1.0, 1.0f64..2.0)) {
            prop_assert!(x < 100);
            prop_assert!(a < b, "a {a} not below b {b}");
            prop_assert_eq!(x, x);
        }

        #[test]
        fn oneof_covers_both_signs(x in prop_oneof![1.0f32..2.0, (1.0f32..2.0).prop_map(|v| -v)]) {
            prop_assert!(x.abs() >= 1.0 && x.abs() < 2.0);
        }
    }
}

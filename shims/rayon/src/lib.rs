//! Offline *sequential* shim for the `rayon` crate (see
//! `shims/README.md`).
//!
//! The `par_*` entry points used by this workspace are provided with
//! identical signatures but execute on the calling thread. All real call
//! sites either write disjoint chunks or perform order-insensitive
//! reductions, so results are identical to the parallel versions.

/// The traits the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    /// `into_par_iter()` — sequential shim returning the std iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the (sequential) iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_chunks_mut()` — sequential shim over `chunks_mut`.
    pub trait ParallelSliceMut<T> {
        /// Mutable chunks of `size` elements.
        fn par_chunks_mut(&mut self, size: usize) -> core::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> core::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }

    /// `par_iter_mut()` — sequential shim over `iter_mut`.
    pub trait IntoParallelRefMutIterator<T> {
        /// Mutable element iterator.
        fn par_iter_mut(&mut self) -> core::slice::IterMut<'_, T>;
    }

    impl<T> IntoParallelRefMutIterator<T> for [T] {
        fn par_iter_mut(&mut self) -> core::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn shims_behave_like_std() {
        let sum: usize = (0..10usize).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(sum, 90);

        let mut v = vec![0usize; 6];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(v, [0, 1, 2, 3, 4, 5]);

        let mut w = vec![0usize; 6];
        w.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.fill(i));
        assert_eq!(w, [0, 0, 1, 1, 2, 2]);
    }
}

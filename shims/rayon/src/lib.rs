//! Offline *sequential* shim for the `rayon` crate (see
//! `shims/README.md`).
//!
//! The `par_*` entry points used by this workspace are provided with
//! identical signatures but execute on the calling thread. All real call
//! sites either write disjoint chunks or perform order-insensitive
//! reductions, so results are identical to the parallel versions.

/// The traits the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    /// `into_par_iter()` — sequential shim returning the std iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the (sequential) iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_chunks_mut()` — sequential shim over `chunks_mut`.
    pub trait ParallelSliceMut<T> {
        /// Mutable chunks of `size` elements.
        fn par_chunks_mut(&mut self, size: usize) -> core::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> core::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }

    /// `par_iter_mut()` — sequential shim over `iter_mut`.
    pub trait IntoParallelRefMutIterator<T> {
        /// Mutable element iterator.
        fn par_iter_mut(&mut self) -> core::slice::IterMut<'_, T>;
    }

    impl<T> IntoParallelRefMutIterator<T> for [T] {
        fn par_iter_mut(&mut self) -> core::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }
}

/// `rayon::ThreadPoolBuilder` — sequential shim. Built pools carry no
/// threads; [`ThreadPool::install`] runs the closure on the calling
/// thread. Thread-count reproducibility tests thus hold trivially under
/// the shim and remain meaningful when the real crate is swapped in.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default (ignored) settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Records the requested thread count (informational only).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds the (threadless) pool; never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads.max(1) })
    }
}

/// A pool built by [`ThreadPoolBuilder`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` "inside" the pool — on the calling thread in the shim.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    /// The thread count the pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Error type of [`ThreadPoolBuilder::build`] (never constructed by the
/// shim, kept for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl core::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pool_install_runs_on_calling_thread() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().expect("build");
        assert_eq!(pool.current_num_threads(), 4);
        let here = std::thread::current().id();
        let (val, tid) = pool.install(|| (21 * 2, std::thread::current().id()));
        assert_eq!(val, 42);
        assert_eq!(tid, here, "sequential shim must not spawn");
    }

    #[test]
    fn shims_behave_like_std() {
        let sum: usize = (0..10usize).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(sum, 90);

        let mut v = vec![0usize; 6];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(v, [0, 1, 2, 3, 4, 5]);

        let mut w = vec![0usize; 6];
        w.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.fill(i));
        assert_eq!(w, [0, 0, 1, 1, 2, 2]);
    }
}

//! Offline API-subset shim for `parking_lot` (see `shims/README.md`).
//!
//! Wraps the std synchronisation primitives with parking_lot's
//! signatures: `const` constructors, no lock poisoning (a poisoned std
//! lock is recovered transparently), plus a condvar-based
//! [`ReentrantMutex`].

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Mutual exclusion without poisoning.
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates the mutex (usable in statics).
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader–writer lock without poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock (usable in statics).
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// A mutex the owning thread may re-acquire. Guards give shared (`&T`)
/// access, as in parking_lot.
pub struct ReentrantMutex<T> {
    // (owner thread id, recursion count); owner 0 = unlocked.
    state: StdMutex<(u64, usize)>,
    cond: Condvar,
    value: T,
}

impl<T> ReentrantMutex<T> {
    /// Creates the mutex (usable in statics).
    pub const fn new(value: T) -> Self {
        ReentrantMutex { state: StdMutex::new((0, 0)), cond: Condvar::new(), value }
    }

    /// Acquires the lock, blocking unless this thread already holds it.
    pub fn lock(&self) -> ReentrantMutexGuard<'_, T> {
        let me = thread_id();
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.1 == 0 {
                *st = (me, 1);
                break;
            }
            if st.0 == me {
                st.1 += 1;
                break;
            }
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        ReentrantMutexGuard { lock: self }
    }
}

/// RAII guard for [`ReentrantMutex`].
pub struct ReentrantMutexGuard<'a, T> {
    lock: &'a ReentrantMutex<T>,
}

impl<T> Deref for ReentrantMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.lock.value
    }
}

impl<T> Drop for ReentrantMutexGuard<'_, T> {
    fn drop(&mut self) {
        let mut st = self.lock.state.lock().unwrap_or_else(|e| e.into_inner());
        st.1 -= 1;
        if st.1 == 0 {
            st.0 = 0;
            drop(st);
            self.lock.cond.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static LOCK: ReentrantMutex<()> = ReentrantMutex::new(());

    #[test]
    fn reentrant_same_thread() {
        let _a = LOCK.lock();
        let _b = LOCK.lock();
    }

    #[test]
    fn excludes_other_threads() {
        let m = std::sync::Arc::new(ReentrantMutex::new(()));
        let shared = std::sync::Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _g = m.lock();
                    let v = *shared.lock();
                    std::thread::yield_now();
                    *shared.lock() = v + 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*shared.lock(), 400);
    }
}

//! Offline API-subset shim for the `rand` crate (see `shims/README.md`).
//!
//! Provides seeded deterministic generation via a splitmix64 core. The
//! random streams differ from the real `StdRng`; callers in this
//! workspace only rely on within-process seeded determinism.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (subset: `gen_range`).
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng);
                (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let u = unit_f64(rng);
                (a as f64 + u * (b as f64 - a as f64)) as $t
            }
        }
    )*};
}
float_range!(f32, f64);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (a as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator types.
pub mod rngs {
    /// Deterministic seeded generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&n));
            let m: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&m));
        }
    }
}

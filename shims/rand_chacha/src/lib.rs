//! Offline shim for `rand_chacha` (see `shims/README.md`). No source in
//! this workspace uses the crate; the shim exists so the dependency
//! resolves without network access.

//! Offline API-subset shim for the `bytes` crate (see
//! `shims/README.md`): `Bytes`/`BytesMut` plus the little-endian
//! `Buf`/`BufMut` accessors the checkpoint codec uses.

use std::ops::{Bound, RangeBounds};

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Bytes {
    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when nothing remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// A sub-view of the unread bytes.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let rest = &self.data[self.pos..];
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => rest.len(),
        };
        Bytes { data: rest[start..end].to_vec(), pos: 0 }
    }
}

/// Sequential read access to a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `dst.len()` bytes, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

/// Sequential write access to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 3);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        let mut s = [0u8; 3];
        r.copy_to_slice(&mut s);
        assert_eq!(&s, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_to_vec() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(b.slice(..3).to_vec(), vec![0, 1, 2]);
        assert_eq!(b.slice(2..4).to_vec(), vec![2, 3]);
        assert_eq!(b.len(), 6);
    }
}

//! Offline API-subset shim for the `criterion` crate (see
//! `shims/README.md`).
//!
//! Runs each benchmark closure a small fixed number of iterations and
//! prints the mean wall-clock time — no statistics, warm-up, or report
//! files. Bench binaries built with `harness = false` only execute
//! their benchmarks when invoked with `--bench` (as `cargo bench`
//! does), so `cargo test` runs them as instant no-ops.

use std::fmt;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] for parity with criterion.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("bench/{id}"), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&format!("bench/{id}"), self.sample_size, |b| f(b, input));
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the logical workload per iteration (ignored by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.criterion.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function-plus-parameter id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Logical throughput declaration (accepted, not used).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running it once per sample.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

fn run_bench(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, total_nanos: 0, iters: 0 };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.total_nanos / b.iters as u128;
        println!("{label}: mean {} ns over {} iters", mean, b.iters);
    } else {
        println!("{label}: no iterations run");
    }
}

/// True when the binary was launched as a benchmark (`cargo bench`
/// passes `--bench`).
pub fn invoked_as_bench() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Declares a benchmark group; both the simple form
/// `criterion_group!(benches, f1, f2)` and the configured form
/// `criterion_group!(name = benches; config = ...; targets = f1, f2)`
/// are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a `harness = false` bench binary. Benchmarks
/// run only under `cargo bench` (`--bench` present); otherwise the
/// binary exits immediately so `cargo test` stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::invoked_as_bench() {
                $($group();)+
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(16));
        group.bench_function("sum", |b| b.iter(|| (0..16u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(8usize), &8usize, |b, &n| {
            b.iter(|| (0..n as u64).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn runs_groups_and_benches() {
        let mut c = Criterion::default().sample_size(3);
        sample_bench(&mut c);
        c.bench_function("top-level", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(simple_form, sample_bench);
    criterion_group!(
        name = configured_form;
        config = Criterion::default().sample_size(2);
        targets = sample_bench,
    );

    #[test]
    fn group_macros_compile_and_run() {
        simple_form();
        configured_form();
    }
}
